// forest_index: every query checked against a dumb serial oracle built
// from the same forest — BFS for parent/depth/distance, walk-up for lca,
// edge-removal reachability for bridges, all-pairs eccentricity for
// diameters — over the correctness corpus (sized so the oracles stay
// affordable) plus hand-built shapes with known answers.

#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <queue>
#include <set>
#include <vector>

#include "core/forest_index.hpp"
#include "core/sf_engine.hpp"
#include "test_helpers.hpp"

namespace pcc {
namespace {

using cc::forest_index;

// Undirected adjacency of a forest, serial.
std::vector<std::vector<vertex_id>> forest_adjacency(
    size_t n, std::span<const graph::edge> forest) {
  std::vector<std::vector<vertex_id>> adj(n);
  for (const auto& [u, w] : forest) {
    adj[u].push_back(w);
    adj[w].push_back(u);
  }
  return adj;
}

// Serial BFS distances in the forest from s; kNoVertex-sized sentinel
// (SIZE_MAX) for unreachable vertices.
std::vector<size_t> forest_bfs(const std::vector<std::vector<vertex_id>>& adj,
                               vertex_id s) {
  std::vector<size_t> dist(adj.size(), SIZE_MAX);
  std::queue<vertex_id> q;
  dist[s] = 0;
  q.push(s);
  while (!q.empty()) {
    const vertex_id v = q.front();
    q.pop();
    for (vertex_id w : adj[v]) {
      if (dist[w] == SIZE_MAX) {
        dist[w] = dist[v] + 1;
        q.push(w);
      }
    }
  }
  return dist;
}

// Brute-force bridges of g: an edge {u,w} (u < w) is a bridge iff removing
// ONE copy of it disconnects u from w. Quadratic-ish; corpus graphs are
// small enough.
std::set<std::pair<vertex_id, vertex_id>> oracle_bridges(
    const graph::graph& g) {
  const size_t n = g.num_vertices();
  // Count undirected multiplicity so parallel edges de-bridge each other.
  std::map<std::pair<vertex_id, vertex_id>, size_t> mult;
  for (size_t u = 0; u < n; ++u) {
    for (vertex_id w : g.neighbors(static_cast<vertex_id>(u))) {
      if (u < w) ++mult[{static_cast<vertex_id>(u), w}];
    }
  }
  std::set<std::pair<vertex_id, vertex_id>> bridges;
  for (const auto& [e, count] : mult) {
    if (count > 1 || e.first == e.second) continue;  // parallel or self loop
    // BFS from e.first avoiding edge e.
    std::vector<char> seen(n, 0);
    std::queue<vertex_id> q;
    seen[e.first] = 1;
    q.push(e.first);
    while (!q.empty() && !seen[e.second]) {
      const vertex_id v = q.front();
      q.pop();
      for (vertex_id w : g.neighbors(v)) {
        if ((v == e.first && w == e.second) ||
            (v == e.second && w == e.first)) {
          continue;
        }
        if (!seen[w]) {
          seen[w] = 1;
          q.push(w);
        }
      }
    }
    if (!seen[e.second]) bridges.insert(e);
  }
  return bridges;
}

// The index under test plus the forest it was built from.
struct built_index {
  graph::graph g;
  std::vector<graph::edge> forest;
  std::vector<vertex_id> labels;
  forest_index idx;
};

built_index build(graph::graph g) {
  cc::sf_engine engine;
  const cc::sf_engine::result r = engine.run(g);
  std::vector<graph::edge> forest(r.forest.begin(), r.forest.end());
  std::vector<vertex_id> labels(r.labels.begin(), r.labels.end());
  forest_index idx(g.num_vertices(), forest, labels);
  return {std::move(g), std::move(forest), std::move(labels), std::move(idx)};
}

// Validate a path() answer without assuming which edges the tree picked:
// consecutive edges must chain from u to v through the forest edge set.
void expect_valid_path(const built_index& b, vertex_id u, vertex_id v,
                       const std::vector<graph::edge>& path) {
  std::set<std::pair<vertex_id, vertex_id>> fset;
  for (const auto& [a, c] : b.forest) {
    fset.insert({a, c});
    fset.insert({c, a});
  }
  vertex_id at = u;
  std::set<vertex_id> visited{u};
  for (const auto& [a, c] : path) {
    ASSERT_TRUE(fset.contains({a, c}))
        << "(" << a << "," << c << ") not a forest edge";
    // The edge touches `at`; advance to its other endpoint.
    ASSERT_TRUE(a == at || c == at) << "path breaks at vertex " << at;
    at = a == at ? c : a;
    ASSERT_TRUE(visited.insert(at).second) << "path revisits " << at;
  }
  EXPECT_EQ(at, v);
}

class ForestIndexCorpus
    : public ::testing::TestWithParam<pcc::testing::graph_case> {};

TEST_P(ForestIndexCorpus, AgreesWithSerialOracles) {
  const built_index b = build(GetParam().make());
  const size_t n = b.g.num_vertices();
  const auto adj = forest_adjacency(n, b.forest);

  // --- parent / depth / roots against BFS from each recorded root. ------
  const auto& comp = b.idx.components();
  for (vertex_id c = 0; c < comp.num_components(); ++c) {
    const auto st = b.idx.stats(c);
    // Root is the component minimum and its own tree top.
    const auto members = comp.members(c);
    EXPECT_EQ(st.root, *std::min_element(members.begin(), members.end()));
    EXPECT_EQ(b.idx.parent(st.root), kNoVertex);
    EXPECT_EQ(b.idx.depth(st.root), 0u);
    EXPECT_EQ(st.size, members.size());

    const auto dist = forest_bfs(adj, st.root);
    size_t ecc = 0;
    for (vertex_id v : members) {
      ASSERT_NE(dist[v], SIZE_MAX) << "forest does not span component " << c;
      EXPECT_EQ(b.idx.depth(v), dist[v]) << "vertex " << v;
      if (v != st.root) {
        const vertex_id p = b.idx.parent(v);
        ASSERT_LT(p, n);
        EXPECT_EQ(dist[p] + 1, dist[v]) << "parent of " << v;
      }
      ecc = std::max(ecc, dist[v]);
    }

    // --- exact diameter: max eccentricity over the whole tree. ----------
    // (All-pairs over members; corpus components are small.)
    if (members.size() <= 600) {
      size_t diam = 0;
      for (vertex_id v : members) {
        const auto d = forest_bfs(adj, v);
        for (vertex_id w : members) diam = std::max(diam, d[w]);
      }
      EXPECT_EQ(st.diameter, diam) << "component " << c;
    } else {
      EXPECT_GE(st.diameter, ecc);  // diameter >= any eccentricity
    }
  }

  // --- path / distance / lca on sampled pairs. --------------------------
  parallel::rng gen(7);
  const size_t pairs = std::min<size_t>(n == 0 ? 0 : 25, n);
  for (size_t i = 0; i < pairs; ++i) {
    const vertex_id u = static_cast<vertex_id>(gen.bounded(2 * i, n));
    const vertex_id v = static_cast<vertex_id>(gen.bounded(2 * i + 1, n));
    if (!b.idx.connected(u, v)) {
      EXPECT_TRUE(b.idx.path(u, v).empty());
      continue;
    }
    const auto dist = forest_bfs(adj, u);
    const auto path = b.idx.path(u, v);
    if (u == v) {
      EXPECT_TRUE(path.empty());
      continue;
    }
    EXPECT_EQ(path.size(), dist[v]);
    EXPECT_EQ(b.idx.distance(u, v), dist[v]);
    expect_valid_path(b, u, v, path);
    // lca: the deepest vertex that is an ancestor of both (oracle by
    // walking up from both sides).
    vertex_id a = u, bb = v;
    while (b.idx.depth(a) > b.idx.depth(bb)) a = b.idx.parent(a);
    while (b.idx.depth(bb) > b.idx.depth(a)) bb = b.idx.parent(bb);
    while (a != bb) {
      a = b.idx.parent(a);
      bb = b.idx.parent(bb);
    }
    EXPECT_EQ(b.idx.lca(u, v), a);
  }

  // --- k_largest: size-descending, ties by ascending dense id. ----------
  const size_t k = comp.num_components();
  const auto largest = b.idx.k_largest(k + 3);  // over-ask: clamped
  ASSERT_EQ(largest.size(), k);
  for (size_t i = 1; i < largest.size(); ++i) {
    const size_t prev = comp.size(largest[i - 1]);
    const size_t cur = comp.size(largest[i]);
    EXPECT_TRUE(prev > cur || (prev == cur && largest[i - 1] < largest[i]))
        << "rank " << i;
  }
  if (k > 0) {
    EXPECT_EQ(b.idx.k_largest(1)[0], comp.largest());
  }
}

INSTANTIATE_TEST_SUITE_P(Corpus, ForestIndexCorpus,
                         ::testing::ValuesIn(pcc::testing::correctness_corpus()),
                         pcc::testing::graph_case_name());

class ForestIndexBridges
    : public ::testing::TestWithParam<pcc::testing::graph_case> {};

TEST_P(ForestIndexBridges, MatchBruteForceRemoval) {
  const built_index b = build(GetParam().make());
  if (b.g.num_edges() > 120000) GTEST_SKIP() << "oracle too slow";
  const auto expected = oracle_bridges(b.g);
  const auto got = b.idx.bridges(b.g);
  std::set<std::pair<vertex_id, vertex_id>> got_set;
  for (const auto& [u, w] : got) {
    got_set.insert({std::min(u, w), std::max(u, w)});
  }
  EXPECT_EQ(got_set.size(), got.size()) << "duplicate bridge reported";
  EXPECT_EQ(got_set, expected);
}

INSTANTIATE_TEST_SUITE_P(Corpus, ForestIndexBridges,
                         ::testing::ValuesIn(pcc::testing::correctness_corpus()),
                         pcc::testing::graph_case_name());

TEST(ForestIndex, HandBuiltAnswers) {
  // 6-cycle (no bridges) + a 3-tail off vertex 2 (all bridges) + an
  // isolated edge (a bridge) + a lone vertex: 12 vertices, 3 components.
  const graph::graph g = graph::from_edges(
      12, {{0, 1}, {1, 2}, {2, 3}, {3, 4}, {4, 5}, {5, 0},   // cycle
           {2, 6}, {6, 7}, {7, 8},                           // tail
           {9, 10}});                                        // pair; 11 alone
  const built_index b = build(graph::graph(g));
  EXPECT_EQ(b.idx.components().num_components(), 3u);
  EXPECT_EQ(b.forest.size(), 9u);  // n - #components = 12 - 3

  // Bridges: exactly the tail and the isolated pair.
  const auto bridges = b.idx.bridges(b.g);
  std::set<std::pair<vertex_id, vertex_id>> bset;
  for (const auto& [u, w] : bridges) bset.insert({std::min(u, w), std::max(u, w)});
  const std::set<std::pair<vertex_id, vertex_id>> expected = {
      {2, 6}, {6, 7}, {7, 8}, {9, 10}};
  EXPECT_EQ(bset, expected);

  // Path 8 -> 4: down the tail to 2, then around the cycle on whichever
  // side the tree kept — the exact length depends on which cycle edge the
  // decomposition dropped, so check against the forest BFS oracle.
  const auto adj = forest_adjacency(12, b.forest);
  EXPECT_TRUE(b.idx.connected(8, 4));
  EXPECT_EQ(b.idx.distance(8, 4), forest_bfs(adj, 8)[4]);
  expect_valid_path(b, 8, 4, b.idx.path(8, 4));
  EXPECT_EQ(b.idx.path(8, 4).size(), b.idx.distance(8, 4));

  // Diameters: pair = 1, singleton = 0; the big component's tree is the
  // cycle broken somewhere plus the tail, so its diameter lands in [5, 8].
  std::vector<size_t> diams;
  for (vertex_id c = 0; c < b.idx.components().num_components(); ++c) {
    diams.push_back(b.idx.stats(c).diameter);
  }
  std::sort(diams.begin(), diams.end());
  ASSERT_EQ(diams.size(), 3u);
  EXPECT_EQ(diams[0], 0u);
  EXPECT_EQ(diams[1], 1u);
  EXPECT_GE(diams[2], 5u);
  EXPECT_LE(diams[2], 8u);

  // k_largest: the 9-vertex component first, then the pair, then the
  // singleton.
  const auto top = b.idx.k_largest(3);
  ASSERT_EQ(top.size(), 3u);
  EXPECT_EQ(b.idx.components().size(top[0]), 9u);
  EXPECT_EQ(b.idx.components().size(top[1]), 2u);
  EXPECT_EQ(b.idx.components().size(top[2]), 1u);
}

TEST(ForestIndex, EmptyAndSingleton) {
  {
    const built_index b = build(graph::empty_graph(0));
    EXPECT_EQ(b.idx.num_vertices(), 0u);
    EXPECT_EQ(b.idx.components().num_components(), 0u);
    EXPECT_TRUE(b.idx.k_largest(4).empty());
  }
  {
    const built_index b = build(graph::empty_graph(1));
    EXPECT_EQ(b.idx.components().num_components(), 1u);
    EXPECT_EQ(b.idx.parent(0), kNoVertex);
    EXPECT_EQ(b.idx.depth(0), 0u);
    EXPECT_TRUE(b.idx.path(0, 0).empty());
    EXPECT_EQ(b.idx.stats(0).diameter, 0u);
  }
}

}  // namespace
}  // namespace pcc
