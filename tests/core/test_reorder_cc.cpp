// End-to-end contract of the locality layer: connectivity answers are
// unchanged by vertex relabeling, across every reorder policy, both
// scheduler backends, canonical and representative-label algorithms, on a
// skew-heavy corpus. Plus the select_reorder gate as a pure function.

#include <gtest/gtest.h>

#include <map>
#include <string>
#include <vector>

#include "core/registry.hpp"
#include "core/select.hpp"
#include "graph/generators.hpp"
#include "parallel/scheduler.hpp"
#include "test_helpers.hpp"

namespace pcc {
namespace {

using cc::cc_options;
using cc::reorder_policy;

constexpr reorder_policy kFixedPolicies[] = {
    reorder_policy::kNone, reorder_policy::kDegree, reorder_policy::kHub,
    reorder_policy::kBfs};

// Same partition: the label function of `a` and `b` induce identical
// equivalence classes (labels themselves may differ).
void expect_same_partition(const std::vector<vertex_id>& a,
                           const std::vector<vertex_id>& b,
                           const std::string& what) {
  ASSERT_EQ(a.size(), b.size()) << what;
  std::map<vertex_id, vertex_id> a2b, b2a;
  for (size_t v = 0; v < a.size(); ++v) {
    const auto [ia, inserted_a] = a2b.insert({a[v], b[v]});
    ASSERT_EQ(ia->second, b[v]) << what << " vertex " << v;
    const auto [ib, inserted_b] = b2a.insert({b[v], a[v]});
    ASSERT_EQ(ib->second, a[v]) << what << " vertex " << v;
  }
}

// The skew-heavy corpus the locality layer targets: hub-dominated rMat,
// a pure path (worst case for reordering to win, best case to break
// something), a star, and a multi-component mixture.
std::vector<testing::graph_case> reorder_corpus() {
  using namespace pcc::graph;
  return {
      {"rmat_skew",
       [] {
         return rmat_graph(8192, 60000, 29, {.a = 0.5, .b = 0.1, .c = 0.1});
       }},
      {"path5000", [] { return line_graph(5000); }},
      {"star4000", [] { return star_graph(4000); }},
      {"social", [] { return social_network_like(1200, 31); }},
      {"mixture",
       [] {
         std::vector<pcc::graph::graph> parts;
         parts.push_back(star_graph(500));
         parts.push_back(line_graph(400));
         parts.push_back(rmat_graph(1024, 6000, 37));
         parts.push_back(empty_graph(50));
         return disjoint_union(parts);
       }},
  };
}

class ReorderCc : public ::testing::TestWithParam<testing::graph_case> {};

TEST_P(ReorderCc, LabelsInvariantAcrossPoliciesAndBackends) {
  const graph::graph g = GetParam().make();
  const size_t n = g.num_vertices();

  // One canonical algorithm (min labels — exact equality must hold), one
  // representative-label algorithm (partition equality), plus "auto".
  const struct {
    const char* name;
    bool canonical;
  } algos[] = {{"shiloach-vishkin", true},
               {"serial-sf-rem", true},
               {"decomp-arb-hybrid", false},
               {"auto", false}};

  for (const auto& [name, canonical] : algos) {
    const cc::algorithm* algo = cc::find_algorithm(name);
    ASSERT_NE(algo, nullptr) << name;
    cc::algo_workspace ws;

    // Baseline: no reordering, OpenMP backend.
    cc_options base_opt;
    base_opt.reorder = reorder_policy::kNone;
    std::vector<vertex_id> baseline(n);
    {
      const parallel::scoped_backend bg(parallel::backend::kOpenMP);
      cc::run_algorithm(*algo, g, base_opt, ws, baseline);
    }

    for (const parallel::backend backend :
         {parallel::backend::kOpenMP, parallel::backend::kThreadPool}) {
      const parallel::scoped_backend bg(backend);
      for (const reorder_policy policy : kFixedPolicies) {
        cc_options opt;
        opt.reorder = policy;
        std::vector<vertex_id> labels(n);
        cc::cc_stats stats;
        cc::run_algorithm(*algo, g, opt, ws, labels, &stats);
        const std::string what =
            std::string(name) + " policy=" + cc::reorder_policy_name(policy) +
            " backend=" +
            (backend == parallel::backend::kThreadPool ? "pool" : "openmp");
        if (canonical) {
          // Canonical labels are each component's minimum ORIGINAL id; the
          // wrapper restores that after mapping back, so equality is exact.
          ASSERT_EQ(labels, baseline) << what;
        } else {
          expect_same_partition(labels, baseline, what);
        }
      }
      // kAuto (the default) must agree with the baseline partition too,
      // whether or not the probe decides to relabel.
      cc_options opt;
      opt.reorder = reorder_policy::kAuto;
      std::vector<vertex_id> labels(n);
      cc::run_algorithm(*algo, g, opt, ws, labels);
      expect_same_partition(labels, baseline,
                            std::string(name) + " policy=auto");
    }
  }
}

INSTANTIATE_TEST_SUITE_P(SkewCorpus, ReorderCc,
                         ::testing::ValuesIn(reorder_corpus()),
                         testing::graph_case_name{});

TEST(ReorderCcStats, ReorderModeRecordedWhenPinned) {
  const graph::graph g = graph::rmat_graph(4096, 24000, 41);
  const cc::algorithm* algo = cc::find_algorithm("decomp-arb-hybrid");
  ASSERT_NE(algo, nullptr);
  cc::algo_workspace ws;
  std::vector<vertex_id> labels(g.num_vertices());
  cc_options opt;
  opt.reorder = reorder_policy::kHub;
  cc::cc_stats stats;
  cc::run_algorithm(*algo, g, opt, ws, labels, &stats);
  EXPECT_STREQ(stats.reorder, "hub");

  opt.reorder = reorder_policy::kNone;
  cc::run_algorithm(*algo, g, opt, ws, labels, &stats);
  EXPECT_STREQ(stats.reorder, "none");
}

TEST(SelectReorder, GateFiresOnlyOnBigSkewedLowDiameterGraphs) {
  // Pure function of the probe — synthesize the statistics.
  cc::probe_stats ps;
  ps.n = size_t{1} << 20;
  ps.m = 10 * ps.n;
  ps.degree_skew = 64.0;
  ps.diameter_proxy = 2.0;
  ps.large_component = true;
  EXPECT_EQ(cc::select_reorder(ps), graph::reorder_mode::kDegree);

  // Too small: a sub-cache graph gains nothing from relabeling.
  cc::probe_stats small = ps;
  small.n = 1 << 16;
  EXPECT_EQ(cc::select_reorder(small), graph::reorder_mode::kNone);

  // Not skewed: no hot-set concentration to gain from a degree sort.
  cc::probe_stats flat = ps;
  flat.degree_skew = 2.0;
  EXPECT_EQ(cc::select_reorder(flat), graph::reorder_mode::kNone);

  // No giant component: the selector routes to the decompose-contract
  // pipeline, which a degree relabel measurably slows down.
  cc::probe_stats scattered = ps;
  scattered.large_component = false;
  EXPECT_EQ(cc::select_reorder(scattered), graph::reorder_mode::kNone);

  // High-diameter (mesh/path-like): union-find's tree chases are shaped by
  // the forest, not the id layout.
  cc::probe_stats deep = ps;
  deep.diameter_proxy = 50.0;
  EXPECT_EQ(cc::select_reorder(deep), graph::reorder_mode::kNone);

  // Edgeless: nothing to do.
  cc::probe_stats empty = ps;
  empty.m = 0;
  EXPECT_EQ(cc::select_reorder(empty), graph::reorder_mode::kNone);
}

}  // namespace
}  // namespace pcc
