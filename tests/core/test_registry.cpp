// The cc::algorithm registry: metadata, lookup, the randomized equivalence
// battery (every registered algorithm — including the Liu–Tarjan variants
// and "auto" — against the sequential oracle on adversarial inputs under
// both scheduler backends), and the allocation-free repeated-query
// guarantee for workspace-backed entries.

#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <new>
#include <string>
#include <vector>

#include "test_helpers.hpp"

// ---------------------------------------------------------------------------
// Allocation counting hook (same idiom as test_cc_engine.cpp). Disabled
// under ASan, whose allocator owns operator new/delete; the Release CI job
// is the one that enforces the zero-allocation assertions.
#if defined(__SANITIZE_ADDRESS__)
#define PCC_NO_ALLOC_HOOK 1
#elif defined(__has_feature)
#if __has_feature(address_sanitizer)
#define PCC_NO_ALLOC_HOOK 1
#endif
#endif

namespace {

std::atomic<bool> g_count_allocs{false};
std::atomic<size_t> g_alloc_count{0};

#ifndef PCC_NO_ALLOC_HOOK
inline void note_alloc() {
  if (g_count_allocs.load(std::memory_order_relaxed)) {
    g_alloc_count.fetch_add(1, std::memory_order_relaxed);
  }
}

void* counted_alloc(size_t size) {
  note_alloc();
  void* p = std::malloc(size == 0 ? 1 : size);
  if (p == nullptr) throw std::bad_alloc();
  return p;
}

void* counted_aligned_alloc(size_t size, size_t align) {
  note_alloc();
  void* p = nullptr;
  if (posix_memalign(&p, align < sizeof(void*) ? sizeof(void*) : align,
                     size == 0 ? 1 : size) != 0) {
    throw std::bad_alloc();
  }
  return p;
}
#endif  // PCC_NO_ALLOC_HOOK

}  // namespace

#ifndef PCC_NO_ALLOC_HOOK
void* operator new(std::size_t size) { return counted_alloc(size); }
void* operator new[](std::size_t size) { return counted_alloc(size); }
void* operator new(std::size_t size, std::align_val_t align) {
  return counted_aligned_alloc(size, static_cast<size_t>(align));
}
void* operator new[](std::size_t size, std::align_val_t align) {
  return counted_aligned_alloc(size, static_cast<size_t>(align));
}
void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }
void operator delete(void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete[](void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete(void* p, std::size_t, std::align_val_t) noexcept {
  std::free(p);
}
void operator delete[](void* p, std::size_t, std::align_val_t) noexcept {
  std::free(p);
}
#endif  // PCC_NO_ALLOC_HOOK
// ---------------------------------------------------------------------------

namespace pcc {
namespace {

using pcc::testing::graph_case;

// Adversarial inputs for the equivalence battery: degenerate shapes, high
// diameter, heavy degree skew, and self-loop-heavy multigraph edge lists
// (self loops must be connectivity no-ops).
std::vector<graph_case> battery_corpus() {
  using namespace pcc::graph;
  std::vector<graph_case> cases = {
      {"empty0", [] { return empty_graph(0); }},
      {"isolated64", [] { return empty_graph(64); }},
      {"line4000", [] { return line_graph(4000); }},
      {"star3000", [] { return star_graph(3000); }},
      {"grid3d_4096", [] { return grid3d_graph(4096, true, 5); }},
      {"rmat_skew", [] {
         return rmat_graph(4096, 30000, 11, {.a = 0.6, .b = 0.1, .c = 0.1});
       }},
      {"self_loop_heavy", [] {
         edge_list edges;
         for (vertex_id v = 0; v < 200; ++v) {
           edges.push_back({v, v});
           edges.push_back({v, (v * 7 + 1) % 200});
           if (v % 3 == 0) edges.push_back({v, v});
         }
         return from_edges(200, std::move(edges),
                           {.remove_self_loops = false});
       }},
      {"random_sparse", [] { return random_graph(3000, 2, 9); }},
  };
  return cases;
}

TEST(Registry, TableLooksSane) {
  const std::span<const cc::algorithm> algos = cc::algorithms();
  ASSERT_GE(algos.size(), 20u);
  EXPECT_STREQ(algos.front().name, "auto");
  // Names are unique and resolvable.
  for (const cc::algorithm& a : algos) {
    const cc::algorithm* found = cc::find_algorithm(a.name);
    ASSERT_NE(found, nullptr) << a.name;
    EXPECT_EQ(found, &a) << "duplicate registry name " << a.name;
    EXPECT_NE(a.description, nullptr);
    EXPECT_NE(a.run, nullptr);
  }
  EXPECT_EQ(cc::find_algorithm("no-such-algorithm"), nullptr);
  // The listing mentions every name.
  const std::string listing = cc::algorithm_listing();
  for (const cc::algorithm& a : algos) {
    EXPECT_NE(listing.find(a.name), std::string::npos) << a.name;
  }
}

TEST(Registry, ResolveMapsDecompAndThrowsOnUnknown) {
  cc::cc_options opt;
  opt.algorithm = "decomp";
  opt.variant = cc::decomp_variant::kMin;
  EXPECT_STREQ(cc::resolve_algorithm(opt).name, "decomp-min");
  opt.variant = cc::decomp_variant::kArb;
  EXPECT_STREQ(cc::resolve_algorithm(opt).name, "decomp-arb");
  opt.variant = cc::decomp_variant::kArbHybrid;
  EXPECT_STREQ(cc::resolve_algorithm(opt).name, "decomp-arb-hybrid");
  opt.algorithm = "auto";
  EXPECT_STREQ(cc::resolve_algorithm(opt).name, "auto");
  opt.algorithm = "made-up";
  EXPECT_THROW(cc::resolve_algorithm(opt), std::invalid_argument);
}

TEST(Registry, EquivalenceBatteryBothBackends) {
  for (auto b : {parallel::backend::kOpenMP, parallel::backend::kThreadPool}) {
    parallel::scoped_backend guard(b);
    cc::algo_workspace ws;
    for (const graph_case& gc : battery_corpus()) {
      const graph::graph g = gc.make();
      const std::vector<vertex_id> oracle = baselines::serial_sf_components(g);
      std::vector<vertex_id> labels(g.num_vertices());
      for (const cc::algorithm& algo : cc::algorithms()) {
        cc::cc_options opt;
        opt.seed = 3;
        cc::run_algorithm(algo, g, opt, ws, labels);
        EXPECT_TRUE(baselines::labels_equivalent(oracle, labels))
            << algo.name << " on " << gc.name;
        EXPECT_TRUE(baselines::is_valid_components_labeling(g, labels))
            << algo.name << " on " << gc.name;
        EXPECT_TRUE(baselines::labels_are_representatives(labels))
            << algo.name << " on " << gc.name;
      }
    }
  }
}

TEST(Registry, CanonicalAlgorithmsLabelWithComponentMinima) {
  for (const graph_case& gc : battery_corpus()) {
    const graph::graph g = gc.make();
    const std::vector<vertex_id> oracle = baselines::serial_sf_components(g);
    // Minimum vertex id per oracle component.
    std::vector<vertex_id> min_of(g.num_vertices(), kNoVertex);
    for (size_t v = 0; v < oracle.size(); ++v) {
      min_of[oracle[v]] =
          std::min(min_of[oracle[v]], static_cast<vertex_id>(v));
    }
    cc::algo_workspace ws;
    std::vector<vertex_id> labels(g.num_vertices());
    for (const cc::algorithm& algo : cc::algorithms()) {
      if (!algo.canonical_labels) continue;
      cc::run_algorithm(algo, g, cc::cc_options{}, ws, labels);
      for (size_t v = 0; v < labels.size(); ++v) {
        ASSERT_EQ(labels[v], min_of[oracle[v]])
            << algo.name << " on " << gc.name << " vertex " << v;
      }
    }
  }
}

TEST(Registry, AutoRecordsSelectionInStats) {
  const graph::graph g = graph::random_graph(4000, 4, 21);
  cc::cc_stats stats;
  const std::vector<vertex_id> labels = cc::connected_components(g, {}, &stats);
  EXPECT_TRUE(baselines::is_valid_components_labeling(g, labels));
  EXPECT_TRUE(stats.selected);
  ASSERT_NE(stats.algorithm, nullptr);
  EXPECT_STRNE(stats.algorithm, "auto");  // the concrete pick, not "auto"
  EXPECT_NE(cc::find_algorithm(stats.algorithm), nullptr);
  EXPECT_EQ(stats.probe.n, g.num_vertices());
  EXPECT_EQ(stats.probe.m, g.num_edges());
}

TEST(Registry, RepeatedAutoRunsAreAllocationFreeAfterWarmup) {
  // The acceptance bar for the refactor: answering the default ("auto")
  // query repeatedly through one algo_workspace must not touch the heap
  // once the arenas are warm — probe, selection, and the selected
  // algorithm all draw from the workspace.
  const graph::graph g = graph::random_graph(20000, 5, 7);
  cc::cc_options opt;  // algorithm = "auto" (SSO — the string never heaps)
  const cc::algorithm& algo = cc::resolve_algorithm(opt);
  cc::algo_workspace ws;
  ws.reserve(g.num_vertices(), g.num_edges());
  std::vector<vertex_id> labels(g.num_vertices());
  cc::run_algorithm(algo, g, opt, ws, labels);  // warm-up: chain chunks
  cc::run_algorithm(algo, g, opt, ws, labels);  // warm-up: consolidate

  bool saw_clean_run = false;
  for (int attempt = 0; attempt < 10 && !saw_clean_run; ++attempt) {
    g_alloc_count.store(0, std::memory_order_relaxed);
    g_count_allocs.store(true, std::memory_order_relaxed);
    cc::run_algorithm(algo, g, opt, ws, labels);
    g_count_allocs.store(false, std::memory_order_relaxed);
    saw_clean_run = g_alloc_count.load(std::memory_order_relaxed) == 0;
  }
  EXPECT_TRUE(saw_clean_run) << "no allocation-free auto run in 10 attempts";
  EXPECT_TRUE(baselines::is_valid_components_labeling(g, labels));
}

TEST(Registry, WorkspaceBackedEntriesAllocationFreeAfterWarmup) {
  const graph::graph g = graph::rmat_graph(8192, 30000, 13);
  cc::algo_workspace ws;
  ws.reserve(g.num_vertices(), g.num_edges());
  std::vector<vertex_id> labels(g.num_vertices());
  for (const cc::algorithm& algo : cc::algorithms()) {
    if (!algo.workspace_backed) continue;
    cc::cc_options opt;
    cc::run_algorithm(algo, g, opt, ws, labels);
    cc::run_algorithm(algo, g, opt, ws, labels);
    bool saw_clean_run = false;
    for (int attempt = 0; attempt < 10 && !saw_clean_run; ++attempt) {
      g_alloc_count.store(0, std::memory_order_relaxed);
      g_count_allocs.store(true, std::memory_order_relaxed);
      cc::run_algorithm(algo, g, opt, ws, labels);
      g_count_allocs.store(false, std::memory_order_relaxed);
      saw_clean_run = g_alloc_count.load(std::memory_order_relaxed) == 0;
    }
    EXPECT_TRUE(saw_clean_run)
        << "no allocation-free run in 10 attempts for " << algo.name;
  }
}

}  // namespace
}  // namespace pcc
