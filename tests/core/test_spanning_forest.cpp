// Decomposition-based spanning forest: exact size, edges drawn from the
// graph, acyclicity, and spanning (same partition as connectivity) — over
// the corpus and parameter sweeps.

#include <gtest/gtest.h>

#include <set>

#include "core/spanning_forest.hpp"
#include "test_helpers.hpp"

namespace pcc {
namespace {

using baselines::union_find;
using cc::cc_options;
using cc::spanning_forest;

// Full validation of a claimed spanning forest of g.
void expect_valid_forest(const graph::graph& g,
                         const std::vector<graph::edge>& forest) {
  const size_t n = g.num_vertices();
  const auto ref = graph::reference_components(g);
  size_t num_components = 0;
  for (size_t v = 0; v < n; ++v) {
    if (ref[v] == v) ++num_components;
  }
  // Exact size.
  ASSERT_EQ(forest.size(), n - num_components);

  // Every forest edge is a real graph edge (directed set membership).
  std::set<std::pair<vertex_id, vertex_id>> edge_set;
  for (size_t u = 0; u < n; ++u) {
    for (vertex_id w : g.neighbors(static_cast<vertex_id>(u))) {
      edge_set.insert({static_cast<vertex_id>(u), w});
    }
  }
  union_find uf(n);
  for (const auto& [u, w] : forest) {
    ASSERT_TRUE(edge_set.contains({u, w}))
        << "(" << u << "," << w << ") is not a graph edge";
    // Acyclic: every forest edge joins two distinct trees.
    ASSERT_TRUE(uf.unite(u, w)) << "cycle through (" << u << "," << w << ")";
  }
  // Spanning: forest connectivity equals graph connectivity.
  for (size_t v = 0; v < n; ++v) {
    ASSERT_EQ(uf.find(static_cast<vertex_id>(v)) == uf.find(ref[v]), true);
  }
}

class SpanningForestCorpus
    : public ::testing::TestWithParam<pcc::testing::graph_case> {};

TEST_P(SpanningForestCorpus, ValidForest) {
  const graph::graph g = GetParam().make();
  expect_valid_forest(g, spanning_forest(g));
}

INSTANTIATE_TEST_SUITE_P(Corpus, SpanningForestCorpus,
                         ::testing::ValuesIn(pcc::testing::correctness_corpus()),
                         pcc::testing::graph_case_name());

TEST(SpanningForest, BetaSweep) {
  const graph::graph g = graph::random_graph(5000, 4, 3);
  for (double beta : {0.05, 0.2, 0.5, 0.9}) {
    cc_options opt;
    opt.beta = beta;
    expect_valid_forest(g, spanning_forest(g, opt));
  }
}

TEST(SpanningForest, SeedSweepOnMultiComponentGraph) {
  const graph::graph g = graph::random_graph(8000, 2, 5);  // many components
  for (uint64_t seed : {1u, 2u, 3u, 4u, 5u}) {
    cc_options opt;
    opt.seed = seed;
    expect_valid_forest(g, spanning_forest(g, opt));
  }
}

TEST(SpanningForest, TreeInputReturnsAllEdges) {
  const graph::graph g = graph::binary_tree_graph(1023);
  const auto forest = spanning_forest(g);
  EXPECT_EQ(forest.size(), 1022u);
}

TEST(SpanningForest, EmptyAndEdgeless) {
  EXPECT_TRUE(spanning_forest(graph::empty_graph(0)).empty());
  EXPECT_TRUE(spanning_forest(graph::empty_graph(17)).empty());
}

TEST(SpanningForest, DenseGraphNeedsManyLevels) {
  const graph::graph g = graph::social_network_like(2048, 7);
  expect_valid_forest(g, spanning_forest(g));
}

TEST(SpanningForest, MatchesComponentCountFromCc) {
  const graph::graph g = graph::rmat_graph(4096, 10000, 9);
  const auto forest = spanning_forest(g);
  const auto labels = cc::connected_components(g);
  EXPECT_EQ(forest.size(), g.num_vertices() - cc::num_components(labels));
}

}  // namespace
}  // namespace pcc
