// component_index: dense ids, sizes, membership, connectivity queries —
// against labelings from connected_components over the corpus.

#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "core/component_index.hpp"
#include "test_helpers.hpp"

namespace pcc {
namespace {

using cc::component_index;

TEST(ComponentIndex, KnownSmallPartition) {
  // {0,1,2} | {3,4} | {5}
  const std::vector<vertex_id> labels = {0, 0, 0, 4, 4, 5};
  component_index idx(labels);
  EXPECT_EQ(idx.num_components(), 3u);
  EXPECT_EQ(idx.component_of(0), idx.component_of(2));
  EXPECT_NE(idx.component_of(0), idx.component_of(3));
  EXPECT_TRUE(idx.connected(3, 4));
  EXPECT_FALSE(idx.connected(4, 5));
  EXPECT_EQ(idx.size(idx.component_of(0)), 3u);
  EXPECT_EQ(idx.size(idx.component_of(5)), 1u);

  const auto members = idx.members(idx.component_of(3));
  std::set<vertex_id> got(members.begin(), members.end());
  EXPECT_EQ(got, (std::set<vertex_id>{3, 4}));
  EXPECT_EQ(idx.size(idx.largest()), 3u);
}

TEST(ComponentIndex, EmptyAndSingleton) {
  component_index empty_idx(std::vector<vertex_id>{});
  EXPECT_EQ(empty_idx.num_components(), 0u);

  component_index one(std::vector<vertex_id>{0});
  EXPECT_EQ(one.num_components(), 1u);
  EXPECT_EQ(one.size(0), 1u);
}

TEST(ComponentIndex, ConsistentWithLabelsOnCorpus) {
  for (const auto& gc : pcc::testing::correctness_corpus()) {
    const graph::graph g = gc.make();
    const auto labels = cc::connected_components(g);
    component_index idx(labels);
    EXPECT_EQ(idx.num_components(), cc::num_components(labels)) << gc.name;

    // Membership lists partition the vertex set and agree with labels.
    size_t total = 0;
    for (size_t c = 0; c < idx.num_components(); ++c) {
      const auto members = idx.members(static_cast<vertex_id>(c));
      EXPECT_EQ(members.size(), idx.size(static_cast<vertex_id>(c)));
      total += members.size();
      for (vertex_id v : members) {
        ASSERT_EQ(idx.component_of(v), c) << gc.name;
        ASSERT_EQ(labels[v], labels[members[0]]) << gc.name;
      }
    }
    EXPECT_EQ(total, g.num_vertices()) << gc.name;

    // connected() agrees with label equality on samples.
    const size_t n = g.num_vertices();
    for (size_t u = 0; u < n; u += 7) {
      for (size_t v = u; v < n; v += 131) {
        ASSERT_EQ(idx.connected(static_cast<vertex_id>(u),
                                static_cast<vertex_id>(v)),
                  labels[u] == labels[v]);
      }
    }
  }
}

TEST(ComponentIndex, SpanConstructorMatchesVectorConstructor) {
  // cc_engine::run() returns a span over engine-owned labels; building the
  // index from it must agree with the vector overload (and not copy).
  const graph::graph g = graph::random_graph(700, 3, 17);
  cc::cc_engine engine(cc::cc_options{});
  const std::span<const vertex_id> span_labels = engine.run(g);
  const std::vector<vertex_id> vec_labels(span_labels.begin(),
                                          span_labels.end());
  const component_index from_span(span_labels);
  const component_index from_vec(vec_labels);
  ASSERT_EQ(from_span.num_components(), from_vec.num_components());
  EXPECT_EQ(from_span.sizes(), from_vec.sizes());
  for (size_t v = 0; v < g.num_vertices(); v += 13) {
    ASSERT_EQ(from_span.component_of(static_cast<vertex_id>(v)),
              from_vec.component_of(static_cast<vertex_id>(v)));
  }
}

TEST(ComponentIndex, LargestMatchesSizes) {
  const graph::graph g = graph::social_network_like(1200, 3);
  const auto labels = cc::connected_components(g);
  component_index idx(labels);
  const size_t max_size =
      *std::max_element(idx.sizes().begin(), idx.sizes().end());
  EXPECT_EQ(idx.size(idx.largest()), max_size);
  // The giant component dominates this graph family.
  EXPECT_GT(max_size, g.num_vertices() / 2);
}

}  // namespace
}  // namespace pcc
