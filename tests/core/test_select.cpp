// The sampling-based algorithm selector (core/select.hpp): probe
// determinism and plausibility on known shapes, and the selection rules —
// every pick must be a registered, schedule-deterministic algorithm.

#include <gtest/gtest.h>

#include <vector>

#include "test_helpers.hpp"

namespace pcc {
namespace {

cc::probe_stats probe(const graph::graph& g, uint64_t seed = 42) {
  parallel::workspace ws;
  return cc::probe_graph(g, seed, ws);
}

TEST(Select, ProbeEmptyAndEdgelessGraphs) {
  const cc::probe_stats none = probe(graph::empty_graph(0));
  EXPECT_EQ(none.n, 0u);
  EXPECT_STREQ(cc::select_algorithm(none, 8), "serial-sf-rem");

  const cc::probe_stats isolated = probe(graph::empty_graph(500));
  EXPECT_EQ(isolated.m, 0u);
  EXPECT_DOUBLE_EQ(isolated.isolated_fraction, 1.0);
  EXPECT_STREQ(cc::select_algorithm(isolated, 8), "serial-sf-rem");
}

TEST(Select, ProbeIsDeterministic) {
  const graph::graph g = graph::rmat_graph(8192, 40000, 11);
  const cc::probe_stats a = probe(g, 7);
  const cc::probe_stats b = probe(g, 7);
  EXPECT_EQ(a.sampled, b.sampled);
  EXPECT_EQ(a.max_sampled_degree, b.max_sampled_degree);
  EXPECT_DOUBLE_EQ(a.degree_skew, b.degree_skew);
  EXPECT_EQ(a.bfs_rounds, b.bfs_rounds);
  EXPECT_EQ(a.bfs_visited, b.bfs_visited);
  EXPECT_EQ(a.large_component, b.large_component);
  EXPECT_DOUBLE_EQ(a.diameter_proxy, b.diameter_proxy);
}

TEST(Select, ProbeSeparatesKnownShapes) {
  // A path crawls: rounds far exceed log2(visited).
  const cc::probe_stats line = probe(graph::line_graph(50000));
  EXPECT_GE(line.diameter_proxy, 8.0);

  // A supercritical random graph doubles its frontier: tiny proxy, and one
  // component holds nearly everything.
  const cc::probe_stats rnd = probe(graph::random_graph(50000, 5, 3));
  EXPECT_LT(rnd.diameter_proxy, 8.0);
  EXPECT_TRUE(rnd.large_component);

  // Power-law-ish graphs have many hubs, so the degree sample reliably
  // catches one. (A single hub — star_graph — can legitimately slip
  // through a 2048-vertex sample; skew detection targets the former.)
  const cc::probe_stats social = probe(graph::social_network_like(20000, 5));
  EXPECT_GE(social.degree_skew, 4.0);
}

TEST(Select, OneWorkerPicksSequentialOrGiantComponentShortcut) {
  // Sequentially there are exactly three sensible picks: Rem's union-find,
  // or — when the probe sees a giant component — one of the two shortcut
  // algorithms that skip most of its edges (cheaper than Rem's full edge
  // scan even on one thread). All three are schedule-deterministic.
  for (const auto& gc : pcc::testing::correctness_corpus()) {
    const graph::graph g = gc.make();
    const cc::probe_stats ps = probe(g);
    const std::string pick = cc::select_algorithm(ps, 1);
    if (ps.large_component) {
      EXPECT_TRUE(pick == "serial-sf-rem" || pick == "afforest" ||
                  pick == "hybrid-bfs")
          << gc.name << " picked " << pick;
    } else {
      EXPECT_EQ(pick, "serial-sf-rem") << gc.name;
    }
  }
  // High-diameter inputs never take a shortcut at one worker.
  EXPECT_STREQ(cc::select_algorithm(probe(graph::line_graph(50000)), 1),
               "serial-sf-rem");
}

TEST(Select, EveryPickIsRegisteredAndScheduleDeterministic) {
  for (const auto& gc : pcc::testing::correctness_corpus()) {
    const graph::graph g = gc.make();
    const cc::probe_stats ps = probe(g);
    for (int workers : {1, 2, 8, 64}) {
      const char* pick = cc::select_algorithm(ps, workers);
      const cc::algorithm* algo = cc::find_algorithm(pick);
      ASSERT_NE(algo, nullptr) << pick << " on " << gc.name;
      EXPECT_STRNE(pick, "auto") << gc.name;  // selection must terminate
    }
  }
}

TEST(Select, HighDiameterAvoidsDepthBoundAlgorithms) {
  const cc::probe_stats line = probe(graph::line_graph(50000));
  EXPECT_STREQ(cc::select_algorithm(line, 8), "parallel-sf-rem");
}

TEST(Select, AutoEndToEndMatchesReference) {
  // The selector's picks, whatever they are, answer correctly; repeated
  // default-option runs reproduce the exact labels (every selectable
  // algorithm is schedule-deterministic).
  for (const auto& gc : pcc::testing::correctness_corpus()) {
    const graph::graph g = gc.make();
    const std::vector<vertex_id> oracle = baselines::serial_sf_components(g);
    const std::vector<vertex_id> labels = cc::connected_components(g);
    EXPECT_TRUE(baselines::labels_equivalent(oracle, labels)) << gc.name;
    EXPECT_EQ(labels, cc::connected_components(g)) << gc.name;
  }
}

}  // namespace
}  // namespace pcc
