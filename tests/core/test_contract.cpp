// Contraction: cluster/vertex accounting, dedup behaviour, singleton
// removal, structure of the contracted graph, and the rep/new_id maps.

#include <gtest/gtest.h>

#include <memory>
#include <set>

#include "core/contract.hpp"
#include "graph/generators.hpp"
#include "graph/stats.hpp"
#include "test_helpers.hpp"

namespace pcc {
namespace {

using cc::contract;
using cc::contraction;
using ldd::work_graph;

// Run decomp_arb then contract; returns everything for inspection. The
// graph lives behind a unique_ptr: work_graph borrows the graph's offsets
// array, so the graph object must not relocate when the case is moved.
struct contracted_case {
  std::unique_ptr<graph::graph> g_holder;
  work_graph wg;
  ldd::result dec;
  contraction con;
  const graph::graph& g = *g_holder;
};

contracted_case make_case(graph::graph g, double beta, bool dedup,
                          uint64_t seed = 3,
                          cc::dedup_strategy strategy = cc::dedup_strategy::kAuto) {
  contracted_case c{std::make_unique<graph::graph>(std::move(g)), {}, {}, {}};
  c.wg = work_graph::from(*c.g_holder);
  ldd::options opt;
  opt.beta = beta;
  opt.seed = seed;
  c.dec = ldd::decomp_arb(c.wg, opt, nullptr);
  c.con = contract(c.wg, c.dec, dedup, strategy);
  return c;
}

TEST(Contract, VertexCountEqualsNonSingletonClusters) {
  const auto c = make_case(graph::random_graph(5000, 5, 1), 0.2, true);
  EXPECT_EQ(c.con.contracted.num_vertices() + c.con.num_singleton_clusters,
            c.con.num_clusters);
  EXPECT_EQ(c.con.num_clusters, c.dec.num_clusters);
  EXPECT_EQ(c.con.rep.size(), c.con.contracted.num_vertices());
}

TEST(Contract, RepAndNewIdAreInverse) {
  const auto c = make_case(graph::grid3d_graph(3000, true, 7), 0.3, true);
  for (size_t x = 0; x < c.con.rep.size(); ++x) {
    const vertex_id center = c.con.rep[x];
    EXPECT_EQ(c.dec.cluster[center], center);  // reps are centers
    EXPECT_EQ(c.con.new_id[center], x);
  }
  // new_id is defined exactly on centers of non-singleton clusters.
  size_t defined = 0;
  for (size_t v = 0; v < c.g.num_vertices(); ++v) {
    if (c.con.new_id[v] != kNoVertex) ++defined;
  }
  EXPECT_EQ(defined, c.con.rep.size());
}

TEST(Contract, ContractedGraphIsCleanAndSymmetric) {
  for (bool dedup : {true, false}) {
    const auto c = make_case(graph::rmat_graph(4096, 30000, 5), 0.2, dedup);
    EXPECT_TRUE(graph::is_symmetric(c.con.contracted));
    EXPECT_FALSE(graph::has_self_loops(c.con.contracted));
    if (dedup) {
      EXPECT_FALSE(graph::has_duplicate_edges(c.con.contracted));
    }
  }
}

TEST(Contract, DedupNeverIncreasesEdges) {
  const auto with = make_case(graph::random_graph(8000, 5, 9), 0.3, true);
  const auto without = make_case(graph::random_graph(8000, 5, 9), 0.3, false);
  EXPECT_LE(with.con.contracted.num_edges(),
            without.con.contracted.num_edges());
  // Without dedup every kept directed edge survives.
  EXPECT_EQ(without.con.contracted.num_edges(), without.dec.edges_kept);
  // Dense contractions produce many duplicates (the paper's Figure 4
  // observation); expect a real reduction here.
  EXPECT_LT(with.con.contracted.num_edges(), with.dec.edges_kept);
}

TEST(Contract, EdgesConnectTheRightClusters) {
  // Every contracted edge (x, y) must correspond to >= 1 original edge
  // between cluster rep[x] and cluster rep[y], and vice versa.
  const auto c = make_case(graph::random_graph(2000, 3, 11), 0.2, true);
  std::set<std::pair<vertex_id, vertex_id>> contracted_pairs;
  for (size_t x = 0; x < c.con.contracted.num_vertices(); ++x) {
    for (vertex_id y : c.con.contracted.neighbors(static_cast<vertex_id>(x))) {
      contracted_pairs.insert({c.con.rep[x], c.con.rep[y]});
    }
  }
  std::set<std::pair<vertex_id, vertex_id>> original_pairs;
  for (size_t u = 0; u < c.g.num_vertices(); ++u) {
    for (vertex_id w : c.g.neighbors(static_cast<vertex_id>(u))) {
      if (c.dec.cluster[u] != c.dec.cluster[w]) {
        original_pairs.insert({c.dec.cluster[u], c.dec.cluster[w]});
      }
    }
  }
  EXPECT_EQ(contracted_pairs, original_pairs);
}

TEST(Contract, AllSingletonsWhenNoInterClusterEdges) {
  // One cluster per component (tiny beta): no inter-cluster edges remain,
  // the contracted graph is empty, everything is a singleton.
  graph::graph g = graph::disjoint_union(
      {graph::complete_graph(8), graph::complete_graph(8)});
  work_graph wg = work_graph::from(g);
  ldd::options opt;
  opt.beta = 0.01;
  const auto dec = ldd::decomp_arb(wg, opt, nullptr);
  if (dec.edges_kept == 0) {  // w.h.p. with beta this small
    const auto con = contract(wg, dec, true);
    EXPECT_EQ(con.contracted.num_vertices(), 0u);
    EXPECT_EQ(con.contracted.num_edges(), 0u);
    EXPECT_EQ(con.num_singleton_clusters, con.num_clusters);
  }
}

TEST(Contract, EmptyGraph) {
  graph::graph g = graph::empty_graph(10);
  work_graph wg = work_graph::from(g);
  ldd::options opt;
  const auto dec = ldd::decomp_arb(wg, opt, nullptr);
  const auto con = contract(wg, dec, true);
  EXPECT_EQ(con.num_clusters, 10u);
  EXPECT_EQ(con.contracted.num_vertices(), 0u);
}

TEST(Contract, PreservesComponentCount) {
  // Contraction must not merge or split components: component counts of
  // original and contracted graph agree (counting singleton clusters as
  // their own components).
  const auto c = make_case(graph::random_graph(3000, 2, 13), 0.4, true);
  const size_t original = graph::count_components(c.g);
  const size_t contracted_components =
      graph::count_components(c.con.contracted);
  EXPECT_EQ(original, contracted_components + c.con.num_singleton_clusters);
}

TEST(Contract, SortAndHashDedupProduceIdenticalCsr) {
  // Both dedup routes compact to the same deduplicated, sorted pair set, so
  // the contracted CSR must be byte-identical — not just isomorphic. Run
  // the adversarial corpus: dense contractions (many duplicates), hub
  // graphs, multigraph-like rMat, and tiny edge cases.
  const struct {
    const char* name;
    graph::graph g;
  } cases[] = {
      {"rmat_dense", graph::rmat_graph(4096, 60000, 5)},
      {"random_dense", graph::random_graph(2000, 12, 21)},
      {"star", graph::star_graph(3000)},
      {"grid", graph::grid3d_graph(3000, true, 7)},
      {"small_complete", graph::complete_graph(24)},
  };
  for (const auto& tc : cases) {
    for (const double beta : {0.1, 0.4}) {
      const auto hash = make_case(tc.g, beta, true, 3,
                                  cc::dedup_strategy::kHash);
      const auto sort = make_case(tc.g, beta, true, 3,
                                  cc::dedup_strategy::kSort);
      ASSERT_EQ(hash.con.contracted.offsets(), sort.con.contracted.offsets())
          << tc.name << " beta=" << beta;
      ASSERT_EQ(hash.con.contracted.edges(), sort.con.contracted.edges())
          << tc.name << " beta=" << beta;
      EXPECT_EQ(hash.con.new_id, sort.con.new_id) << tc.name;
      EXPECT_EQ(hash.con.rep, sort.con.rep) << tc.name;
      // kAuto must resolve to one of the two fixed routes, hence also match.
      const auto aut = make_case(tc.g, beta, true, 3,
                                 cc::dedup_strategy::kAuto);
      EXPECT_EQ(aut.con.contracted.offsets(), sort.con.contracted.offsets())
          << tc.name << " beta=" << beta;
      EXPECT_EQ(aut.con.contracted.edges(), sort.con.contracted.edges())
          << tc.name << " beta=" << beta;
    }
  }
}

TEST(Contract, ChooseDedupRouteCostModel) {
  using cc::choose_dedup_route;
  using cc::dedup_strategy;
  // Empty level: route is irrelevant, sort is the cheap no-op.
  EXPECT_EQ(choose_dedup_route(0, 0), dedup_strategy::kSort);
  // Narrow keys (k small => few radix passes): sort wins regardless of m.
  EXPECT_EQ(choose_dedup_route(1 << 20, 1 << 10), dedup_strategy::kSort);
  EXPECT_EQ(choose_dedup_route(100, 50), dedup_strategy::kSort);
  // k up to 2^16 is still a 4-pass sort over the packed 2b-bit key.
  EXPECT_EQ(choose_dedup_route(size_t{1} << 24, size_t{1} << 16),
            dedup_strategy::kSort);
  // Wide key AND heavy duplication: the hash route's post-dedup sort is
  // much smaller, so hashing pays off.
  EXPECT_EQ(choose_dedup_route(size_t{1} << 28, size_t{1} << 20),
            dedup_strategy::kHash);
  // Wide key but light duplication (m/k < 8): dedup barely shrinks the
  // array, stay on the streaming sort.
  EXPECT_EQ(choose_dedup_route((size_t{1} << 20) * 4, size_t{1} << 20),
            dedup_strategy::kSort);
  // Saturated pair space (m >= 16 * k^2/2): duplication is heavy enough
  // that the hash table's hot set stays cached — the measured crossover
  // on the micro pair. k=128 at m=2^18 is the dup=16 micro point.
  EXPECT_EQ(choose_dedup_route(size_t{1} << 18, 128), dedup_strategy::kHash);
  EXPECT_EQ(choose_dedup_route(size_t{1} << 18, 256), dedup_strategy::kSort);
}

TEST(Contract, DedupRouteReportedInView) {
  // contract_into records the route it actually took; pinned strategies
  // must be honored verbatim and "off" reported when dedup is disabled.
  const graph::graph g = graph::random_graph(3000, 8, 17);
  work_graph wg = work_graph::from(g);
  ldd::options opt;
  opt.beta = 0.2;
  const auto dec = ldd::decomp_arb(wg, opt, nullptr);
  parallel::workspace persist_ws, graph_ws, scratch_ws;
  const auto run = [&](bool dedup, cc::dedup_strategy s) {
    persist_ws.reset();
    graph_ws.reset();
    const auto cv = cc::contract_into(wg, dec.cluster, dedup, persist_ws,
                                      graph_ws, scratch_ws, s);
    return std::string(cv.dedup_route);
  };
  EXPECT_EQ(run(true, cc::dedup_strategy::kHash), "hash");
  EXPECT_EQ(run(true, cc::dedup_strategy::kSort), "sort");
  EXPECT_EQ(run(false, cc::dedup_strategy::kAuto), "off");
  const std::string autod = run(true, cc::dedup_strategy::kAuto);
  EXPECT_TRUE(autod == "hash" || autod == "sort") << autod;
}

TEST(Contract, WorksAfterEachDecompositionVariant) {
  const graph::graph g = graph::grid3d_graph(2000, true, 17);
  ldd::options opt;
  opt.beta = 0.25;
  for (int variant = 0; variant < 3; ++variant) {
    work_graph wg = work_graph::from(g);
    const ldd::result dec = variant == 0   ? ldd::decomp_min(wg, opt, nullptr)
                            : variant == 1 ? ldd::decomp_arb(wg, opt, nullptr)
                                           : ldd::decomp_arb_hybrid(wg, opt, nullptr);
    const auto con = contract(wg, dec, true);
    EXPECT_EQ(graph::count_components(g),
              graph::count_components(con.contracted) +
                  con.num_singleton_clusters)
        << "variant " << variant;
  }
}

}  // namespace
}  // namespace pcc
