// The Liu–Tarjan concurrent-labeling kernel (core/labeling.hpp): the named
// variant table, every hook × shortcut × alter policy combination (the
// certification epilogue makes all of them unconditionally correct), and
// the canonical min-label guarantee across backends and worker counts.

#include <gtest/gtest.h>

#include <set>
#include <string>
#include <vector>

#include "test_helpers.hpp"

namespace pcc {
namespace {

using pcc::testing::correctness_corpus;

TEST(Labeling, VariantTableIsConsistent) {
  const std::span<const cc::lt_variant> variants = cc::liu_tarjan_variants();
  ASSERT_GE(variants.size(), 8u);
  std::set<std::string> names;
  for (const cc::lt_variant& v : variants) {
    EXPECT_TRUE(names.insert(v.name).second) << "duplicate " << v.name;
    EXPECT_EQ(cc::find_liu_tarjan_variant(v.name), &v);
    // Roots-only hooks stall without edge alteration (a non-root vertex
    // never re-hooks); the table must only expose convergent combinations.
    if (v.policy.hook == cc::lt_hook::kRoots) EXPECT_TRUE(v.policy.alter);
  }
  EXPECT_EQ(cc::find_liu_tarjan_variant("lt-nope"), nullptr);
}

TEST(Labeling, NamedVariantsMatchReferenceOnCorpus) {
  for (const auto& gc : correctness_corpus()) {
    const graph::graph g = gc.make();
    const std::vector<vertex_id> oracle = baselines::serial_sf_components(g);
    for (const cc::lt_variant& v : cc::liu_tarjan_variants()) {
      const std::vector<vertex_id> labels =
          cc::liu_tarjan_components(g, v.policy);
      EXPECT_TRUE(baselines::labels_equivalent(oracle, labels))
          << v.name << " on " << gc.name;
    }
  }
}

TEST(Labeling, EveryPolicyCombinationIsCorrect) {
  // The full 4 x 2 x 2 policy lattice, including combinations the variant
  // table does not name (e.g. roots hooks without alter): the
  // certification epilogue must make every one of them correct.
  const std::vector<graph::graph> graphs = {
      graph::line_graph(2000),
      graph::star_graph(1000),
      graph::rmat_graph(2048, 10000, 7),
      graph::cliques_with_bridges(10, 8),
  };
  for (const graph::graph& g : graphs) {
    const std::vector<vertex_id> oracle = baselines::serial_sf_components(g);
    for (auto hook : {cc::lt_hook::kDirect, cc::lt_hook::kParent,
                      cc::lt_hook::kExtended, cc::lt_hook::kRoots}) {
      for (auto shortcut : {cc::lt_shortcut::kSingle, cc::lt_shortcut::kFull}) {
        for (bool alter : {false, true}) {
          const cc::lt_policy pol{hook, shortcut, alter};
          const std::vector<vertex_id> labels =
              cc::liu_tarjan_components(g, pol);
          EXPECT_TRUE(baselines::labels_equivalent(oracle, labels))
              << "hook=" << static_cast<int>(hook)
              << " shortcut=" << static_cast<int>(shortcut)
              << " alter=" << alter;
        }
      }
    }
  }
}

TEST(Labeling, LabelsAreComponentMinimaBothBackends) {
  const graph::graph g = graph::rmat_graph(4096, 20000, 19);
  const std::vector<vertex_id> oracle = baselines::serial_sf_components(g);
  std::vector<vertex_id> min_of(g.num_vertices(), kNoVertex);
  for (size_t v = 0; v < oracle.size(); ++v) {
    min_of[oracle[v]] = std::min(min_of[oracle[v]], static_cast<vertex_id>(v));
  }
  for (auto b : {parallel::backend::kOpenMP, parallel::backend::kThreadPool}) {
    parallel::scoped_backend guard(b);
    for (const cc::lt_variant& v : cc::liu_tarjan_variants()) {
      const std::vector<vertex_id> labels =
          cc::liu_tarjan_components(g, v.policy);
      for (size_t u = 0; u < labels.size(); ++u) {
        ASSERT_EQ(labels[u], min_of[oracle[u]]) << v.name << " vertex " << u;
      }
    }
  }
}

TEST(Labeling, IntoRunsInCallerStorageAndReportsRounds) {
  const graph::graph g = graph::line_graph(5000);
  parallel::workspace ws;
  std::vector<vertex_id> labels(g.num_vertices());
  const size_t rounds =
      cc::liu_tarjan_into(g, cc::lt_policy{}, labels, ws);
  EXPECT_GE(rounds, 1u);
  EXPECT_TRUE(baselines::is_valid_components_labeling(g, labels));
  // A second run over the warm workspace agrees exactly (determinism).
  std::vector<vertex_id> again(g.num_vertices());
  cc::liu_tarjan_into(g, cc::lt_policy{}, again, ws);
  EXPECT_EQ(labels, again);
}

TEST(Labeling, SelfLoopsAndEmptyGraphs) {
  graph::edge_list edges;
  for (vertex_id v = 0; v < 100; ++v) {
    edges.push_back({v, v});
    if (v + 1 < 100) edges.push_back({v, v + 1});
  }
  const graph::graph loops =
      graph::from_edges(100, std::move(edges), {.remove_self_loops = false});
  const graph::graph empty = graph::empty_graph(0);
  for (const cc::lt_variant& v : cc::liu_tarjan_variants()) {
    const std::vector<vertex_id> l1 = cc::liu_tarjan_components(loops, v.policy);
    EXPECT_TRUE(baselines::is_valid_components_labeling(loops, l1)) << v.name;
    for (vertex_id l : l1) EXPECT_EQ(l, 0u) << v.name;  // one path component
    EXPECT_TRUE(cc::liu_tarjan_components(empty, v.policy).empty()) << v.name;
  }
}

}  // namespace
}  // namespace pcc
