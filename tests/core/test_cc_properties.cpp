// Deeper property tests of the connectivity pipeline: invariants of the
// per-level statistics, randomized fuzzing over generator parameters, and
// behaviour under extreme options.

#include <gtest/gtest.h>

#include <cmath>

#include "test_helpers.hpp"

namespace pcc {
namespace {

using cc::cc_options;
using cc::cc_stats;
using cc::connected_components;
using cc::decomp_variant;

cc_options options_for(decomp_variant v, double beta, uint64_t seed) {
  cc_options opt;
  opt.algorithm = "decomp";
  opt.variant = v;
  opt.beta = beta;
  opt.seed = seed;
  return opt;
}

TEST(CcProperties, FuzzRandomGraphsAllVariants) {
  // Randomized sweep over (n, degree, seed) for every variant; the oracle
  // is sequential BFS. This is the suite's broadest net.
  parallel::rng gen(2024);
  size_t case_id = 0;
  for (int trial = 0; trial < 25; ++trial) {
    const size_t n = 2 + gen.bounded(4 * trial, 3000);
    const size_t deg = 1 + gen.bounded(4 * trial + 1, 6);
    const uint64_t gseed = gen[4 * trial + 2];
    const graph::graph g = graph::random_graph(n, deg, gseed);
    for (auto v : {decomp_variant::kMin, decomp_variant::kArb,
                   decomp_variant::kArbHybrid}) {
      const auto labels =
          connected_components(g, options_for(v, 0.2, gen[4 * trial + 3]));
      ASSERT_TRUE(baselines::is_valid_components_labeling(g, labels))
          << "case " << case_id << " n=" << n << " deg=" << deg;
      ++case_id;
    }
  }
}

TEST(CcProperties, LevelInvariants) {
  const graph::graph g = graph::random_graph(30000, 5, 3);
  cc_stats stats;
  cc_options opt;
  opt.algorithm = "decomp";
  opt.beta = 0.2;
  connected_components(g, opt, &stats);
  ASSERT_GE(stats.levels.size(), 2u);
  for (size_t i = 0; i < stats.levels.size(); ++i) {
    const auto& ls = stats.levels[i];
    // Decomposition can only remove edges.
    EXPECT_LE(ls.edges_kept, ls.m);
    // Dedup can only shrink further.
    EXPECT_LE(ls.edges_after_dedup, ls.edges_kept);
    // Clusters never outnumber vertices; at least one cluster if n > 0.
    EXPECT_LE(ls.num_clusters, ls.n);
    EXPECT_GE(ls.num_clusters, size_t{1});
    EXPECT_LE(ls.num_singletons, ls.num_clusters);
    if (i > 0) {
      // Next level's vertex set = previous level's non-singleton clusters.
      EXPECT_EQ(ls.n, stats.levels[i - 1].num_clusters -
                          stats.levels[i - 1].num_singletons);
      EXPECT_EQ(ls.m, stats.levels[i - 1].edges_after_dedup);
    }
  }
  // Final level ends the recursion: no edges survive it.
  EXPECT_EQ(stats.levels.back().edges_after_dedup, 0u);
}

TEST(CcProperties, LevelCountLogarithmic) {
  // O(log m) levels w.h.p. with constant beta; allow a wide constant.
  const graph::graph g = graph::random_graph(50000, 5, 7);
  cc_stats stats;
  cc_options opt;
  opt.algorithm = "decomp";
  opt.beta = 0.2;
  connected_components(g, opt, &stats);
  const double bound = 4.0 + 3.0 * std::log2(static_cast<double>(g.num_edges()));
  EXPECT_LT(static_cast<double>(stats.levels.size()), bound);
}

TEST(CcProperties, SmallerBetaFewerLevels) {
  const graph::graph g = graph::grid3d_graph(30000, true, 9);
  const auto levels_at = [&](double beta) {
    cc_stats stats;
    cc_options opt;
    opt.algorithm = "decomp";
    opt.beta = beta;
    connected_components(g, opt, &stats);
    return stats.levels.size();
  };
  // Figure 4's observation: smaller beta removes more edges per level,
  // needing fewer levels. Compare the extremes to dodge noise.
  EXPECT_LE(levels_at(0.05), levels_at(0.8));
}

TEST(CcProperties, ExtremeBetas) {
  const graph::graph g = graph::random_graph(2000, 4, 11);
  for (double beta : {0.005, 0.95}) {
    for (auto v : {decomp_variant::kMin, decomp_variant::kArb,
                   decomp_variant::kArbHybrid}) {
      const auto labels = connected_components(g, options_for(v, beta, 1));
      EXPECT_TRUE(baselines::is_valid_components_labeling(g, labels))
          << "beta=" << beta;
    }
  }
}

TEST(CcProperties, HybridThresholdExtremes) {
  const graph::graph g = graph::rmat_graph(4096, 20000, 13);
  for (double threshold : {0.0, 0.0001, 0.99}) {
    cc_options opt;
    opt.algorithm = "decomp";
    opt.variant = decomp_variant::kArbHybrid;
    opt.dense_threshold = threshold;
    const auto labels = connected_components(g, opt);
    EXPECT_TRUE(baselines::is_valid_components_labeling(g, labels))
        << "threshold=" << threshold;
  }
}

TEST(CcProperties, NoDedupStillCorrectAndTerminates) {
  const graph::graph g = graph::grid3d_graph(8000, true, 15);
  cc_options opt;
  opt.algorithm = "decomp";
  opt.dedup = false;
  cc_stats stats;
  const auto labels = connected_components(g, opt, &stats);
  EXPECT_TRUE(baselines::is_valid_components_labeling(g, labels));
  EXPECT_FALSE(stats.used_fallback);
}

TEST(CcProperties, DedupShrinksLevelsOnDenseGraphs) {
  // The paper: duplicate removal shrinks remaining edges well below the
  // 2*beta bound on all graphs but line. Compare level-1 edge counts.
  const graph::graph g = graph::rmat_graph(2048, 60000, 17);
  const auto level1_edges = [&](bool dedup) {
    cc_stats stats;
    cc_options opt;
    opt.algorithm = "decomp";
    opt.dedup = dedup;
    opt.seed = 5;
    connected_components(g, opt, &stats);
    return stats.levels.size() > 1 ? stats.levels[1].m : 0;
  };
  EXPECT_LT(level1_edges(true), level1_edges(false));
}

TEST(CcProperties, TwoVertexAdversarialGraph) {
  // Degenerate case that once threatened non-termination: K2 with beta
  // near 1 (both endpoints can become centers in one round). The per-level
  // reseeding plus round-0-single-center schedule must terminate it.
  const graph::graph g = graph::from_edges(2, {{0, 1}});
  for (auto v : {decomp_variant::kMin, decomp_variant::kArb,
                 decomp_variant::kArbHybrid}) {
    const auto labels = connected_components(g, options_for(v, 0.95, 3));
    EXPECT_EQ(labels[0], labels[1]);
  }
}

TEST(CcProperties, LineGraphManyLevels) {
  // The line graph has no duplicate edges, so edge decay tracks the 2*beta
  // bound rather than collapsing immediately (Figure 4d).
  const graph::graph g = graph::line_graph(20000);
  cc_stats stats;
  cc_options opt;
  opt.algorithm = "decomp";
  opt.beta = 0.1;
  const auto labels = connected_components(g, opt, &stats);
  EXPECT_TRUE(baselines::is_valid_components_labeling(g, labels));
  EXPECT_GE(stats.levels.size(), 3u);
}

TEST(CcProperties, AllVariantsAgreeWithEachOther) {
  const graph::graph g = graph::social_network_like(1024, 19);
  const auto a = connected_components(g, options_for(decomp_variant::kMin, 0.2, 1));
  const auto b = connected_components(g, options_for(decomp_variant::kArb, 0.2, 2));
  const auto c =
      connected_components(g, options_for(decomp_variant::kArbHybrid, 0.2, 3));
  EXPECT_TRUE(baselines::labels_equivalent(a, b));
  EXPECT_TRUE(baselines::labels_equivalent(b, c));
}

TEST(CcProperties, EdgeParallelHighDegreePathCorrect) {
  // Force the Section-4 high-degree edge-parallel path for every frontier
  // vertex (threshold 0) and at a mixed threshold, on skewed graphs where
  // hubs actually exceed the threshold.
  for (const auto& g : {graph::star_graph(5000), graph::rmat_graph(4096, 30000, 3),
                        graph::social_network_like(1024, 5)}) {
    for (size_t threshold : {size_t{0}, size_t{8}, size_t{64}}) {
      cc_options opt;
      opt.algorithm = "decomp";
      opt.variant = decomp_variant::kArb;
      opt.parallel_edge_threshold = threshold;
      const auto labels = connected_components(g, opt);
      EXPECT_TRUE(baselines::is_valid_components_labeling(g, labels))
          << "threshold=" << threshold;
    }
  }
}

TEST(CcProperties, EdgeParallelMatchesSequentialPartition) {
  const graph::graph g = graph::rmat_graph(2048, 20000, 7);
  cc_options opt;
  opt.algorithm = "decomp";
  opt.variant = decomp_variant::kArb;
  const auto plain = connected_components(g, opt);
  opt.parallel_edge_threshold = 4;
  const auto edgepar = connected_components(g, opt);
  EXPECT_TRUE(baselines::labels_equivalent(plain, edgepar));
}

TEST(CcProperties, RepresentativeLabelsAtEveryScale) {
  for (size_t n : {10u, 100u, 1000u, 20000u}) {
    const graph::graph g = graph::random_graph(n, 3, n);
    const auto labels = connected_components(g);
    EXPECT_TRUE(baselines::labels_are_representatives(labels)) << "n=" << n;
  }
}

}  // namespace
}  // namespace pcc
