// The tools' flag parser.

#include <gtest/gtest.h>

#include <vector>

#include "tool_common.hpp"

namespace pcc::tools {
namespace {

arg_parser parse(std::vector<const char*> argv) {
  return arg_parser(static_cast<int>(argv.size()),
                    const_cast<char**>(argv.data()));
}

TEST(ArgParser, KeyValuePairsAndPositionals) {
  const auto args =
      parse({"prog", "--type", "rmat", "input.adj", "--n", "100"});
  EXPECT_EQ(args.program(), "prog");
  EXPECT_EQ(args.get("type", ""), "rmat");
  EXPECT_EQ(args.get_int("n", 0), 100);
  ASSERT_EQ(args.positionals().size(), 1u);
  EXPECT_EQ(args.positionals()[0], "input.adj");
}

TEST(ArgParser, Defaults) {
  const auto args = parse({"prog"});
  EXPECT_EQ(args.get("missing", "dflt"), "dflt");
  EXPECT_EQ(args.get_int("missing", 7), 7);
  EXPECT_DOUBLE_EQ(args.get_double("missing", 0.25), 0.25);
  EXPECT_FALSE(args.has("missing"));
  EXPECT_TRUE(args.positionals().empty());
}

TEST(ArgParser, BooleanFlags) {
  // A flag followed by another flag (or end of argv) is boolean.
  const auto args = parse({"prog", "--verify", "--stats", "--out", "f.txt"});
  EXPECT_TRUE(args.has("verify"));
  EXPECT_TRUE(args.has("stats"));
  EXPECT_EQ(args.get("verify", "x"), "");
  EXPECT_EQ(args.get("out", ""), "f.txt");
}

TEST(ArgParser, TrailingBooleanFlag) {
  const auto args = parse({"prog", "in.adj", "--verbose"});
  EXPECT_TRUE(args.has("verbose"));
  EXPECT_EQ(args.positionals().size(), 1u);
}

TEST(ArgParser, NumericParsing) {
  const auto args = parse({"prog", "--beta", "0.125", "--n", "5000000000"});
  EXPECT_DOUBLE_EQ(args.get_double("beta", 0), 0.125);
  EXPECT_EQ(args.get_int("n", 0), 5000000000LL);  // 64-bit values survive
}

TEST(ArgParser, LastOccurrenceWins) {
  const auto args = parse({"prog", "--n", "1", "--n", "2"});
  EXPECT_EQ(args.get_int("n", 0), 2);
}

TEST(ArgParser, MultiplePositionalsKeepOrder) {
  const auto args = parse({"prog", "a", "--k", "v", "b", "c"});
  EXPECT_EQ(args.positionals(),
            (std::vector<std::string>{"a", "b", "c"}));
}

}  // namespace
}  // namespace pcc::tools
