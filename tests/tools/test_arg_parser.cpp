// The tools' flag parser: declared value/boolean flags, --flag=value,
// strict numerics, and the regression for the boolean-flag lookahead bug
// (a boolean flag used to swallow the following positional).

#include <gtest/gtest.h>

#include <vector>

#include "tool_common.hpp"

namespace pcc::tools {
namespace {

arg_parser parse(std::vector<const char*> argv,
                 std::vector<std::string> value_flags,
                 std::vector<std::string> bool_flags) {
  return arg_parser(static_cast<int>(argv.size()), argv.data(),
                    std::move(value_flags), std::move(bool_flags));
}

TEST(ArgParser, KeyValuePairsAndPositionals) {
  const auto args = parse({"prog", "--type", "rmat", "input.adj", "--n", "100"},
                          {"type", "n"}, {});
  EXPECT_EQ(args.program(), "prog");
  EXPECT_EQ(args.get("type", ""), "rmat");
  EXPECT_EQ(args.get_int("n", 0), 100);
  ASSERT_EQ(args.positionals().size(), 1u);
  EXPECT_EQ(args.positionals()[0], "input.adj");
}

TEST(ArgParser, Defaults) {
  const auto args = parse({"prog"}, {"missing"}, {});
  EXPECT_EQ(args.get("missing", "dflt"), "dflt");
  EXPECT_EQ(args.get_int("missing", 7), 7);
  EXPECT_DOUBLE_EQ(args.get_double("missing", 0.25), 0.25);
  EXPECT_FALSE(args.has("missing"));
  EXPECT_TRUE(args.positionals().empty());
}

// The PR-3 bug: "--stats graph.adj" must keep graph.adj as a positional
// instead of making it the value of the boolean flag.
TEST(ArgParser, BooleanFlagDoesNotSwallowPositional) {
  const auto args = parse({"prog", "--stats", "graph.adj"}, {}, {"stats"});
  EXPECT_TRUE(args.has("stats"));
  ASSERT_EQ(args.positionals().size(), 1u);
  EXPECT_EQ(args.positionals()[0], "graph.adj");
}

TEST(ArgParser, BooleanFlags) {
  const auto args = parse({"prog", "--verify", "--stats", "--out", "f.txt"},
                          {"out"}, {"verify", "stats"});
  EXPECT_TRUE(args.has("verify"));
  EXPECT_TRUE(args.has("stats"));
  EXPECT_EQ(args.get("verify", "x"), "");
  EXPECT_EQ(args.get("out", ""), "f.txt");
}

TEST(ArgParser, TrailingBooleanFlag) {
  const auto args = parse({"prog", "in.adj", "--verbose"}, {}, {"verbose"});
  EXPECT_TRUE(args.has("verbose"));
  EXPECT_EQ(args.positionals().size(), 1u);
}

TEST(ArgParser, EqualsSyntax) {
  const auto args = parse({"prog", "--beta=0.5", "--out=x.txt"},
                          {"beta", "out"}, {});
  EXPECT_DOUBLE_EQ(args.get_double("beta", 0), 0.5);
  EXPECT_EQ(args.get("out", ""), "x.txt");
}

TEST(ArgParser, ValueFlagMayTakeDashValue) {
  // A value flag consumes the next argv entry even if it looks negative.
  const auto args = parse({"prog", "--seed", "-1"}, {"seed"}, {});
  EXPECT_EQ(args.get_int("seed", 0), -1);
}

TEST(ArgParser, NumericParsing) {
  const auto args = parse({"prog", "--beta", "0.125", "--n", "5000000000"},
                          {"beta", "n"}, {});
  EXPECT_DOUBLE_EQ(args.get_double("beta", 0), 0.125);
  EXPECT_EQ(args.get_int("n", 0), 5000000000LL);  // 64-bit values survive
}

TEST(ArgParser, LastOccurrenceWins) {
  const auto args = parse({"prog", "--n", "1", "--n", "2"}, {"n"}, {});
  EXPECT_EQ(args.get_int("n", 0), 2);
}

TEST(ArgParser, MultiplePositionalsKeepOrder) {
  const auto args = parse({"prog", "a", "--k", "v", "b", "c"}, {"k"}, {});
  EXPECT_EQ(args.positionals(), (std::vector<std::string>{"a", "b", "c"}));
}

TEST(ArgParser, UnknownFlagThrows) {
  EXPECT_THROW(parse({"prog", "--bogus"}, {"n"}, {"stats"}), arg_error);
  EXPECT_THROW(parse({"prog", "--bogus=3"}, {"n"}, {"stats"}), arg_error);
}

TEST(ArgParser, MissingValueThrows) {
  EXPECT_THROW(parse({"prog", "--out"}, {"out"}, {}), arg_error);
}

TEST(ArgParser, BooleanFlagWithValueThrows) {
  EXPECT_THROW(parse({"prog", "--stats=yes"}, {}, {"stats"}), arg_error);
}

// atoll/atof used to turn junk into silent zeros; now it is an error.
TEST(ArgParser, GarbageNumbersThrow) {
  const auto args = parse({"prog", "--beta", "abc", "--n", "12x", "--m", "9"},
                          {"beta", "n", "m"}, {});
  EXPECT_THROW(args.get_double("beta", 0.2), arg_error);
  EXPECT_THROW(args.get_int("n", 0), arg_error);
  EXPECT_THROW(args.get_int("beta", 0), arg_error);  // "abc" as int too
  EXPECT_EQ(args.get_int("m", 0), 9);
  EXPECT_THROW(parse({"prog", "--n", ""}, {"n"}, {}).get_int("n", 0),
               arg_error);
}

TEST(ArgParser, FloatValuesAccepted) {
  const auto args = parse({"prog", "--beta", ".5"}, {"beta"}, {});
  EXPECT_DOUBLE_EQ(args.get_double("beta", 0), 0.5);
}

}  // namespace
}  // namespace pcc::tools
