// End-to-end tests of the command-line tools (pcc_gen, pcc_components):
// spawn the real binaries, check exit codes and output files.

#include <gtest/gtest.h>

#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <string>

#include "graph/io.hpp"
#include "graph/stats.hpp"

#ifndef PCC_TOOLS_DIR
#error "PCC_TOOLS_DIR must be defined by the build"
#endif

namespace pcc {
namespace {

namespace fs = std::filesystem;

class CliTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = fs::temp_directory_path() / ("pcc_cli_" + std::to_string(::getpid()));
    fs::create_directories(dir_);
  }
  void TearDown() override { fs::remove_all(dir_); }

  std::string path(const std::string& name) const {
    return (dir_ / name).string();
  }

  static int run(const std::string& cmd) {
    const int status = std::system((cmd + " > /dev/null 2>&1").c_str());
    return WEXITSTATUS(status);
  }

  static std::string tool(const std::string& name) {
    return std::string(PCC_TOOLS_DIR) + "/" + name;
  }

  fs::path dir_;
};

TEST_F(CliTest, GenWritesReadableAdjacencyGraph) {
  ASSERT_EQ(run(tool("pcc_gen") + " --type random --n 500 --degree 3 --seed 7 " +
                path("g.adj")),
            0);
  const graph::graph g = graph::read_adjacency_graph(path("g.adj"));
  EXPECT_EQ(g.num_vertices(), 500u);
  EXPECT_TRUE(graph::is_symmetric(g));
}

TEST_F(CliTest, GenSnapFormat) {
  ASSERT_EQ(run(tool("pcc_gen") + " --type cycle --n 40 --format snap " +
                path("g.txt")),
            0);
  const graph::graph g = graph::read_snap_edge_list(path("g.txt"));
  EXPECT_EQ(g.num_vertices(), 40u);
  EXPECT_EQ(g.num_undirected_edges(), 40u);
}

TEST_F(CliTest, GenRejectsBadArgs) {
  EXPECT_NE(run(tool("pcc_gen") + " --type nosuch --n 10 " + path("x.adj")), 0);
  EXPECT_NE(run(tool("pcc_gen") + " --n 10 " + path("x.adj")), 0);
  EXPECT_NE(run(tool("pcc_gen")), 0);
}

TEST_F(CliTest, ComponentsEndToEndWithVerifyAndLabels) {
  ASSERT_EQ(run(tool("pcc_gen") + " --type rmat --n 1024 --m 3000 --seed 3 " +
                path("g.adj")),
            0);
  ASSERT_EQ(run(tool("pcc_components") + " " + path("g.adj") +
                " --verify --stats --out " + path("labels.txt")),
            0);
  // Labels file: one label per vertex.
  std::ifstream in(path("labels.txt"));
  size_t lines = 0;
  std::string line;
  while (std::getline(in, line)) ++lines;
  EXPECT_EQ(lines, 1024u);
}

TEST_F(CliTest, ComponentsAllAlgorithmsAgreeViaVerify) {
  ASSERT_EQ(run(tool("pcc_gen") + " --type random --n 800 --degree 2 --seed 5 " +
                path("g.adj")),
            0);
  for (const char* algo :
       {"decomp-arb-hybrid", "decomp-arb", "decomp-min", "serial-sf",
        "parallel-sf-prm", "parallel-sf-pbbs", "hybrid-bfs", "multistep",
        "label-prop", "shiloach-vishkin", "random-mate",
        "awerbuch-shiloach", "serial-sf-rem", "parallel-sf-rem",
        "afforest"}) {
    EXPECT_EQ(run(tool("pcc_components") + " " + path("g.adj") +
                  " --algo " + algo + " --verify"),
              0)
        << algo;
  }
}

TEST_F(CliTest, ComponentsWritesSpanningForest) {
  ASSERT_EQ(run(tool("pcc_gen") + " --type random --n 600 --degree 3 --seed 9 " +
                path("g.adj")),
            0);
  ASSERT_EQ(run(tool("pcc_components") + " " + path("g.adj") + " --forest " +
                path("forest.txt")),
            0);
  std::ifstream in(path("forest.txt"));
  std::string header;
  std::getline(in, header);
  EXPECT_EQ(header.rfind("# spanning forest", 0), 0u);
  size_t edges = 0;
  std::string line;
  while (std::getline(in, line)) ++edges;
  const graph::graph g = graph::read_adjacency_graph(path("g.adj"));
  EXPECT_EQ(edges, g.num_vertices() - graph::count_components(g));
}

TEST_F(CliTest, BinaryFormatEndToEnd) {
  ASSERT_EQ(run(tool("pcc_gen") + " --type grid3d --n 1000 --format badj " +
                path("g.badj")),
            0);
  ASSERT_EQ(run(tool("pcc_components") + " --format badj " + path("g.badj") +
                " --verify"),
            0);
}

TEST_F(CliTest, FuzzSmoke) {
  EXPECT_EQ(run(tool("pcc_fuzz") + " --trials 3 --max-n 300"), 0);
}

TEST_F(CliTest, ComponentsRejectsMissingFileAndBadAlgo) {
  EXPECT_NE(run(tool("pcc_components") + " " + path("missing.adj")), 0);
  ASSERT_EQ(run(tool("pcc_gen") + " --type cycle --n 10 " + path("g.adj")), 0);
  EXPECT_NE(run(tool("pcc_components") + " " + path("g.adj") +
                " --algo made-up"),
            0);
}

// The PR-3 bug: a boolean flag before the positional used to swallow it
// ("--stats graph.adj" parsed graph.adj as the value of --stats).
TEST_F(CliTest, BooleanFlagBeforePositional) {
  ASSERT_EQ(run(tool("pcc_gen") + " --type cycle --n 50 " + path("g.adj")), 0);
  EXPECT_EQ(run(tool("pcc_components") + " --stats " + path("g.adj")), 0);
  EXPECT_EQ(run(tool("pcc_components") + " --verify " + path("g.adj")), 0);
}

TEST_F(CliTest, UnknownAndMalformedFlagsExitWithUsage) {
  ASSERT_EQ(run(tool("pcc_gen") + " --type cycle --n 20 " + path("g.adj")), 0);
  EXPECT_EQ(run(tool("pcc_components") + " " + path("g.adj") + " --bogus"), 2);
  EXPECT_EQ(run(tool("pcc_components") + " " + path("g.adj") + " --beta abc"),
            2);
  EXPECT_EQ(run(tool("pcc_components") + " " + path("g.adj") + " --seed"), 2);
  EXPECT_EQ(run(tool("pcc_gen") + " --type cycle --n 1x " + path("x.adj")), 2);
  EXPECT_EQ(run(tool("pcc_fuzz") + " --trials nope"), 2);
}

TEST_F(CliTest, AutoFormatDetection) {
  // No --format flag: pcc_components sniffs all three formats.
  ASSERT_EQ(run(tool("pcc_gen") + " --type random --n 200 --degree 3 "
                "--format badj " + path("g.badj")),
            0);
  ASSERT_EQ(run(tool("pcc_gen") + " --type random --n 200 --degree 3 "
                "--format snap " + path("g.txt")),
            0);
  EXPECT_EQ(run(tool("pcc_components") + " " + path("g.badj") + " --verify"),
            0);
  EXPECT_EQ(run(tool("pcc_components") + " " + path("g.txt") + " --verify"),
            0);
}

TEST_F(CliTest, SerialIoFlagWorks) {
  ASSERT_EQ(run(tool("pcc_gen") + " --type cycle --n 60 " + path("g.adj")), 0);
  EXPECT_EQ(run(tool("pcc_components") + " --serial-io " + path("g.adj") +
                " --verify"),
            0);
}

TEST_F(CliTest, CorruptBinaryFailsWithDiagnostic) {
  ASSERT_EQ(run(tool("pcc_gen") + " --type cycle --n 100 --format badj " +
                path("g.badj")),
            0);
  // Flip one byte inside the edge array; the v2 checksum must catch it and
  // the tool must fail instead of constructing a bogus graph.
  {
    std::fstream f(path("g.badj"),
                   std::ios::in | std::ios::out | std::ios::binary);
    f.seekg(24 + 101 * 8);
    char b = 0;
    f.read(&b, 1);
    b = static_cast<char>(b ^ 0x02);
    f.seekp(24 + 101 * 8);
    f.write(&b, 1);
  }
  EXPECT_EQ(run(tool("pcc_components") + " " + path("g.badj")), 1);
  // Truncated file: structural size check fires.
  ASSERT_EQ(run(tool("pcc_gen") + " --type cycle --n 100 --format badj " +
                path("t.badj")),
            0);
  fs::resize_file(path("t.badj"), fs::file_size(path("t.badj")) / 2);
  EXPECT_EQ(run(tool("pcc_components") + " " + path("t.badj")), 1);
}

TEST_F(CliTest, RepeatModeUsesEngine) {
  ASSERT_EQ(run(tool("pcc_gen") + " --type random --n 400 --degree 3 " +
                path("g.adj")),
            0);
  EXPECT_EQ(run(tool("pcc_components") + " --repeat 3 " + path("g.adj") +
                " --verify"),
            0);
}

}  // namespace
}  // namespace pcc
