// Every baseline connectivity implementation against the sequential BFS
// oracle, over the shared corpus (parameterized: corpus x algorithm).

#include <gtest/gtest.h>

#include <functional>

#include "test_helpers.hpp"

namespace pcc::baselines {
namespace {

using components_fn = std::function<std::vector<vertex_id>(const graph::graph&)>;

struct baseline_param {
  std::string name;
  components_fn fn;
  pcc::testing::graph_case gc;
};

std::vector<std::pair<std::string, components_fn>> all_baselines() {
  return {
      {"serial_sf", &serial_sf_components},
      {"serial_sf_rem", &serial_sf_rem_components},
      {"parallel_sf_prm", &parallel_sf_prm_components},
      {"parallel_sf_pbbs", &parallel_sf_pbbs_components},
      {"hybrid_bfs", &hybrid_bfs_components},
      {"multistep", &multistep_components},
      {"label_prop", &label_prop_components},
      {"shiloach_vishkin", &shiloach_vishkin_components},
      {"random_mate",
       [](const graph::graph& g) { return random_mate_components(g); }},
      {"awerbuch_shiloach", &awerbuch_shiloach_components},
      {"parallel_sf_rem", &parallel_sf_rem_components},
      {"afforest", &afforest_components},
  };
}

class BaselineCorrectness : public ::testing::TestWithParam<baseline_param> {};

TEST_P(BaselineCorrectness, MatchesReference) {
  const auto& p = GetParam();
  const graph::graph g = p.gc.make();
  const auto labels = p.fn(g);
  ASSERT_EQ(labels.size(), g.num_vertices());
  EXPECT_TRUE(is_valid_components_labeling(g, labels));
}

std::vector<baseline_param> make_params() {
  std::vector<baseline_param> params;
  for (const auto& [bname, fn] : all_baselines()) {
    for (const auto& gc : pcc::testing::correctness_corpus()) {
      params.push_back({bname + "_" + gc.name, fn, gc});
    }
  }
  return params;
}

INSTANTIATE_TEST_SUITE_P(
    Matrix, BaselineCorrectness, ::testing::ValuesIn(make_params()),
    [](const ::testing::TestParamInfo<baseline_param>& info) {
      return info.param.name;
    });

TEST(Baselines, AllAgreeOnARealisticGraph) {
  const graph::graph g = graph::social_network_like(700, 21);
  const auto reference = serial_sf_components(g);
  for (const auto& [name, fn] : all_baselines()) {
    EXPECT_TRUE(labels_equivalent(reference, fn(g))) << name;
  }
}

TEST(Baselines, ParallelSfImplementationsAreRaceFreeOverSeeds) {
  // Run the concurrent spanning-forest codes repeatedly on a contended
  // graph; every run must produce the same partition.
  const graph::graph g = graph::cliques_with_bridges(30, 10);
  const auto reference = serial_sf_components(g);
  for (int run = 0; run < 10; ++run) {
    EXPECT_TRUE(labels_equivalent(reference, parallel_sf_prm_components(g)));
    EXPECT_TRUE(labels_equivalent(reference, parallel_sf_pbbs_components(g)));
  }
}

TEST(Baselines, MultistepHandlesGraphWithNoGiantComponent) {
  // Many equal-size components: step 1's BFS covers only one of them and
  // label propagation must finish the rest.
  std::vector<graph::graph> parts;
  for (int i = 0; i < 40; ++i) parts.push_back(graph::cycle_graph(25));
  const graph::graph g = graph::disjoint_union(parts);
  EXPECT_TRUE(is_valid_components_labeling(g, multistep_components(g)));
}

TEST(Baselines, HybridBfsHandlesManyTinyComponents) {
  std::vector<graph::graph> parts;
  for (int i = 0; i < 300; ++i) {
    parts.push_back(graph::from_edges(2, {{0, 1}}));
  }
  const graph::graph g = graph::disjoint_union(parts);
  const auto labels = hybrid_bfs_components(g);
  EXPECT_TRUE(is_valid_components_labeling(g, labels));
  EXPECT_EQ(cc::num_components(labels), 300u);
}

TEST(Baselines, LabelPropFindsMinimumLabelPerComponent) {
  const graph::graph g = graph::disjoint_union(
      {graph::cycle_graph(10), graph::cycle_graph(10)});
  const auto labels = label_prop_components(g);
  for (size_t v = 0; v < 10; ++v) EXPECT_EQ(labels[v], 0u);
  for (size_t v = 10; v < 20; ++v) EXPECT_EQ(labels[v], 10u);
}

TEST(Baselines, RandomMateSeedsAllProduceSamePartition) {
  const graph::graph g = graph::random_graph(2000, 3, 5);
  const auto reference = serial_sf_components(g);
  for (uint64_t seed : {1u, 2u, 3u, 4u}) {
    EXPECT_TRUE(labels_equivalent(reference, random_mate_components(g, seed)))
        << "seed " << seed;
  }
}

TEST(Baselines, AwerbuchShiloachWorstCaseChain) {
  // Long path: hooks must cascade without forming cycles.
  const graph::graph g = graph::line_graph(50000);
  const auto labels = awerbuch_shiloach_components(g);
  for (size_t v = 0; v < g.num_vertices(); ++v) ASSERT_EQ(labels[v], 0u);
}

TEST(Baselines, ShiloachVishkinStarCollapse) {
  // A star is the best case for SV (single hooking round).
  const graph::graph g = graph::star_graph(10000);
  const auto labels = shiloach_vishkin_components(g);
  for (size_t v = 0; v < g.num_vertices(); ++v) ASSERT_EQ(labels[v], 0u);
}

}  // namespace
}  // namespace pcc::baselines
