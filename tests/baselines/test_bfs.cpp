// Parallel BFS: distances vs sequential BFS, parent-tree validity, and the
// direction-optimizing label variant.

#include <gtest/gtest.h>

#include <queue>

#include "baselines/bfs.hpp"
#include "graph/generators.hpp"
#include "graph/stats.hpp"
#include "test_helpers.hpp"

namespace pcc::baselines {
namespace {

std::vector<uint32_t> sequential_bfs_distances(const graph::graph& g,
                                               vertex_id source) {
  std::vector<uint32_t> dist(g.num_vertices(), ~0u);
  std::queue<vertex_id> q;
  dist[source] = 0;
  q.push(source);
  while (!q.empty()) {
    const vertex_id u = q.front();
    q.pop();
    for (vertex_id w : g.neighbors(u)) {
      if (dist[w] == ~0u) {
        dist[w] = dist[u] + 1;
        q.push(w);
      }
    }
  }
  return dist;
}

class BfsOnCorpus
    : public ::testing::TestWithParam<pcc::testing::graph_case> {};

TEST_P(BfsOnCorpus, DistancesMatchSequential) {
  const graph::graph g = GetParam().make();
  if (g.num_vertices() == 0) return;
  for (vertex_id source :
       {vertex_id{0}, static_cast<vertex_id>(g.num_vertices() / 2)}) {
    EXPECT_EQ(parallel_bfs_distances(g, source),
              sequential_bfs_distances(g, source));
  }
}

TEST_P(BfsOnCorpus, ParentsFormValidBfsTree) {
  const graph::graph g = GetParam().make();
  if (g.num_vertices() == 0) return;
  const vertex_id source = 0;
  const auto parents = parallel_bfs_parents(g, source);
  const auto dist = sequential_bfs_distances(g, source);
  EXPECT_EQ(parents[source], source);
  for (size_t v = 0; v < g.num_vertices(); ++v) {
    if (v == source) continue;
    if (dist[v] == ~0u) {
      EXPECT_EQ(parents[v], kNoVertex);
    } else {
      ASSERT_NE(parents[v], kNoVertex);
      // Parent is exactly one level closer.
      EXPECT_EQ(dist[parents[v]] + 1, dist[v]);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Corpus, BfsOnCorpus,
                         ::testing::ValuesIn(pcc::testing::correctness_corpus()),
                         pcc::testing::graph_case_name());

TEST(HybridBfsLabel, LabelsExactlyTheComponent) {
  const graph::graph g = graph::disjoint_union(
      {graph::cycle_graph(100), graph::cycle_graph(50)});
  std::vector<vertex_id> labels(g.num_vertices(), kNoVertex);
  const auto res = hybrid_bfs_label(g, 10, labels, 777);
  EXPECT_EQ(res.num_visited, 100u);
  for (size_t v = 0; v < 100; ++v) EXPECT_EQ(labels[v], 777u);
  for (size_t v = 100; v < 150; ++v) EXPECT_EQ(labels[v], kNoVertex);
}

TEST(HybridBfsLabel, SkipsAlreadyVisitedSource) {
  const graph::graph g = graph::cycle_graph(10);
  std::vector<vertex_id> labels(10, kNoVertex);
  labels[3] = 1;
  const auto res = hybrid_bfs_label(g, 3, labels, 2);
  EXPECT_EQ(res.num_visited, 0u);
}

TEST(HybridBfsLabel, DenseStepsEngageAndStayCorrect) {
  // Low threshold forces bottom-up rounds on a low-diameter dense graph.
  const graph::graph g = graph::social_network_like(512, 3);
  std::vector<vertex_id> dense_labels(g.num_vertices(), kNoVertex);
  std::vector<vertex_id> sparse_labels(g.num_vertices(), kNoVertex);
  // Pick a high-degree source so the component is big.
  vertex_id source = 0;
  for (size_t v = 0; v < g.num_vertices(); ++v) {
    if (g.degree(static_cast<vertex_id>(v)) > g.degree(source)) {
      source = static_cast<vertex_id>(v);
    }
  }
  const auto dres = hybrid_bfs_label(g, source, dense_labels, 1, 0.001);
  const auto sres = hybrid_bfs_label(g, source, sparse_labels, 1, 1.1);
  EXPECT_GT(dres.dense_rounds, 0u);
  EXPECT_EQ(sres.dense_rounds, 0u);
  EXPECT_EQ(dense_labels, sparse_labels);
  EXPECT_EQ(dres.num_visited, sres.num_visited);
}

TEST(HybridBfsLabel, RoundsEqualEccentricityPlusOne) {
  const graph::graph g = graph::line_graph(500);
  std::vector<vertex_id> labels(500, kNoVertex);
  const auto res = hybrid_bfs_label(g, 0, labels, 0);
  EXPECT_EQ(res.num_rounds, 500u);  // one round per level incl. the last
}

TEST(BfsScratch, ReuseAcrossComponentsIsClean) {
  const graph::graph g = graph::disjoint_union(
      {graph::complete_graph(30), graph::complete_graph(40),
       graph::line_graph(20)});
  std::vector<vertex_id> labels(g.num_vertices(), kNoVertex);
  bfs_scratch scratch;
  size_t total = 0;
  for (size_t v = 0; v < g.num_vertices(); ++v) {
    if (labels[v] == kNoVertex) {
      total += hybrid_bfs_label(g, static_cast<vertex_id>(v), labels,
                                static_cast<vertex_id>(v), 0.05, &scratch)
                   .num_visited;
    }
  }
  EXPECT_EQ(total, g.num_vertices());
  EXPECT_TRUE(is_valid_components_labeling(g, labels));
}

}  // namespace
}  // namespace pcc::baselines
