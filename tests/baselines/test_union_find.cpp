// Sequential and concurrent union-find.

#include <gtest/gtest.h>

#include "baselines/rem_union_find.hpp"
#include "baselines/union_find.hpp"
#include "parallel/random.hpp"
#include "parallel/scheduler.hpp"

namespace pcc::baselines {
namespace {

TEST(UnionFind, SingletonsInitially) {
  union_find uf(5);
  for (vertex_id v = 0; v < 5; ++v) EXPECT_EQ(uf.find(v), v);
}

TEST(UnionFind, UniteReportsNovelty) {
  union_find uf(4);
  EXPECT_TRUE(uf.unite(0, 1));
  EXPECT_TRUE(uf.unite(2, 3));
  EXPECT_FALSE(uf.unite(1, 0));
  EXPECT_TRUE(uf.unite(0, 3));
  EXPECT_FALSE(uf.unite(2, 1));
  EXPECT_EQ(uf.find(0), uf.find(2));
}

TEST(UnionFind, ChainCompresses) {
  const size_t n = 100000;
  union_find uf(n);
  for (size_t i = 0; i + 1 < n; ++i) {
    uf.unite(static_cast<vertex_id>(i), static_cast<vertex_id>(i + 1));
  }
  const vertex_id root = uf.find(0);
  for (size_t i = 0; i < n; i += 999) {
    EXPECT_EQ(uf.find(static_cast<vertex_id>(i)), root);
  }
}

TEST(ConcurrentUnionFind, SequentialSemantics) {
  concurrent_union_find uf(6);
  EXPECT_TRUE(uf.unite(0, 1));
  EXPECT_TRUE(uf.unite(2, 3));
  EXPECT_FALSE(uf.unite(3, 2));
  EXPECT_EQ(uf.find(0), uf.find(1));
  EXPECT_NE(uf.find(0), uf.find(2));
  EXPECT_NE(uf.find(4), uf.find(5));
}

TEST(ConcurrentUnionFind, ParallelUnionsFormExactPartition) {
  // Ring unions performed fully in parallel must produce one set, with
  // exactly n-1 novel unions across all attempts (each edge tried twice).
  const size_t n = 100000;
  concurrent_union_find uf(n);
  size_t novel = 0;
  parallel::parallel_for(0, 2 * n, [&](size_t i) {
    const vertex_id a = static_cast<vertex_id>(i % n);
    const vertex_id b = static_cast<vertex_id>((i + 1) % n);
    if (uf.unite(a, b)) parallel::fetch_add<size_t>(&novel, 1);
  }, 64);
  EXPECT_EQ(novel, n - 1);  // spanning tree of a cycle
  const auto labels = uf.flatten();
  for (size_t v = 0; v < n; ++v) ASSERT_EQ(labels[v], labels[0]);
}

TEST(ConcurrentUnionFind, ParallelRandomUnionsMatchSequential) {
  const size_t n = 20000;
  parallel::rng gen(5);
  std::vector<std::pair<vertex_id, vertex_id>> ops(50000);
  for (size_t i = 0; i < ops.size(); ++i) {
    ops[i] = {static_cast<vertex_id>(gen.bounded(2 * i, n)),
              static_cast<vertex_id>(gen.bounded(2 * i + 1, n))};
  }
  concurrent_union_find cu(n);
  parallel::parallel_for(0, ops.size(), [&](size_t i) {
    cu.unite(ops[i].first, ops[i].second);
  }, 16);
  union_find su(n);
  for (auto [a, b] : ops) su.unite(a, b);

  // Same partition: roots may differ, partition must not.
  const auto labels = cu.flatten();
  for (size_t i = 0; i < ops.size(); ++i) {
    for (size_t j = i + 13; j < ops.size(); j += 997) {
      const bool seq_same = su.find(ops[i].first) == su.find(ops[j].first);
      const bool par_same = labels[ops[i].first] == labels[ops[j].first];
      ASSERT_EQ(seq_same, par_same);
    }
  }
}

TEST(ConcurrentUnionFind, FlattenIdempotent) {
  concurrent_union_find uf(10);
  uf.unite(1, 2);
  uf.unite(2, 3);
  const auto a = uf.flatten();
  const auto b = uf.flatten();
  EXPECT_EQ(a, b);
  EXPECT_EQ(a[1], a[3]);
}

TEST(RemUnionFind, SequentialSemantics) {
  rem_union_find uf(6);
  EXPECT_TRUE(uf.unite(0, 1));
  EXPECT_TRUE(uf.unite(2, 3));
  EXPECT_FALSE(uf.unite(1, 0));
  EXPECT_TRUE(uf.unite(3, 0));
  EXPECT_FALSE(uf.unite(2, 1));
  EXPECT_EQ(uf.find(3), uf.find(0));
  EXPECT_NE(uf.find(4), uf.find(0));
}

TEST(RemUnionFind, MatchesClassicUnionFindOnRandomOps) {
  const size_t n = 5000;
  parallel::rng gen(17);
  rem_union_find rem(n);
  union_find classic(n);
  for (size_t i = 0; i < 20000; ++i) {
    const vertex_id a = static_cast<vertex_id>(gen.bounded(2 * i, n));
    const vertex_id b = static_cast<vertex_id>(gen.bounded(2 * i + 1, n));
    EXPECT_EQ(rem.unite(a, b), classic.unite(a, b)) << "op " << i;
  }
  for (size_t v = 0; v < n; v += 37) {
    for (size_t w = v + 11; w < n; w += 613) {
      EXPECT_EQ(rem.find(static_cast<vertex_id>(v)) ==
                    rem.find(static_cast<vertex_id>(w)),
                classic.find(static_cast<vertex_id>(v)) ==
                    classic.find(static_cast<vertex_id>(w)));
    }
  }
}

TEST(ParallelRemUnionFind, ConcurrentRingMergesToOneSet) {
  const size_t n = 80000;
  parallel_rem_union_find uf(n);
  parallel::parallel_for(0, n, [&](size_t i) {
    uf.unite(static_cast<vertex_id>(i), static_cast<vertex_id>((i + 1) % n));
  }, 64);
  const auto labels = uf.flatten();
  for (size_t v = 0; v < n; ++v) ASSERT_EQ(labels[v], labels[0]);
}

TEST(ParallelRemUnionFind, ConcurrentMatchesSequentialPartition) {
  const size_t n = 20000;
  parallel::rng gen(23);
  std::vector<std::pair<vertex_id, vertex_id>> ops(60000);
  for (size_t i = 0; i < ops.size(); ++i) {
    ops[i] = {static_cast<vertex_id>(gen.bounded(2 * i, n)),
              static_cast<vertex_id>(gen.bounded(2 * i + 1, n))};
  }
  parallel_rem_union_find par(n);
  parallel::parallel_for(0, ops.size(), [&](size_t i) {
    par.unite(ops[i].first, ops[i].second);
  }, 16);
  union_find seq(n);
  for (auto [a, b] : ops) seq.unite(a, b);
  const auto labels = par.flatten();
  for (size_t i = 0; i < ops.size(); i += 7) {
    for (size_t j = i + 1; j < ops.size(); j += 1993) {
      ASSERT_EQ(labels[ops[i].first] == labels[ops[j].first],
                seq.find(ops[i].first) == seq.find(ops[j].first));
    }
  }
}

}  // namespace
}  // namespace pcc::baselines
