// The verification utilities themselves (they guard everything else, so
// they get their own adversarial tests).

#include <gtest/gtest.h>

#include "baselines/verify.hpp"
#include "graph/builder.hpp"
#include "graph/generators.hpp"
#include "graph/stats.hpp"

namespace pcc::baselines {
namespace {

TEST(LabelsEquivalent, IdenticalAndRenamed) {
  EXPECT_TRUE(labels_equivalent({0, 0, 1}, {0, 0, 1}));
  EXPECT_TRUE(labels_equivalent({0, 0, 1}, {5, 5, 9}));
  EXPECT_TRUE(labels_equivalent({}, {}));
}

TEST(LabelsEquivalent, DetectsMerge) {
  // Second labeling merges {0,1} with {2}.
  EXPECT_FALSE(labels_equivalent({0, 0, 1}, {3, 3, 3}));
}

TEST(LabelsEquivalent, DetectsSplit) {
  EXPECT_FALSE(labels_equivalent({0, 0, 0}, {1, 1, 2}));
}

TEST(LabelsEquivalent, DetectsSizeMismatch) {
  EXPECT_FALSE(labels_equivalent({0}, {0, 0}));
}

TEST(LabelsEquivalent, DetectsCrossedPartition) {
  // Same number of classes and sizes, but members shuffled across classes.
  EXPECT_FALSE(labels_equivalent({0, 0, 1, 1}, {2, 3, 2, 3}));
}

TEST(IsValidComponentsLabeling, AcceptsReferenceItself) {
  const graph::graph g = graph::random_graph(500, 3, 1);
  EXPECT_TRUE(
      is_valid_components_labeling(g, graph::reference_components(g)));
}

TEST(IsValidComponentsLabeling, RejectsWrongSizeOrPartition) {
  const graph::graph g = graph::cycle_graph(4);
  EXPECT_FALSE(is_valid_components_labeling(g, {0, 0, 0}));     // short
  EXPECT_FALSE(is_valid_components_labeling(g, {0, 0, 1, 1}));  // split
}

TEST(LabelsAreRepresentatives, AcceptsAndRejects) {
  // Valid: label 0 names {0,1}, label 2 names {2}.
  EXPECT_TRUE(labels_are_representatives({0, 0, 2}));
  // Invalid: label 1 names {0,1} but labels[1] != 1... actually labels[1]=1
  // here, while vertex 0 claims label 1 and labels[1] == 1 -> valid; make a
  // genuinely broken one: label 5 out of range.
  EXPECT_FALSE(labels_are_representatives({5, 0, 2}));
  // Broken: vertex 2 labeled 0, and labels[0] == 1 != 0.
  EXPECT_FALSE(labels_are_representatives({1, 1, 0}));
}

}  // namespace
}  // namespace pcc::baselines
