// Shared fixtures and graph corpus for the test suite.
#pragma once

#include <gtest/gtest.h>

#include <functional>
#include <string>
#include <vector>

#include "pcc.hpp"

namespace pcc::testing {

// A named graph factory — the corpus the parameterized correctness sweeps
// run over. Sizes are chosen so that each case covers several BFS rounds
// and at least one contraction level while the full matrix stays fast.
struct graph_case {
  std::string name;
  std::function<graph::graph()> make;
};

inline std::vector<graph_case> correctness_corpus() {
  using namespace pcc::graph;
  return {
      {"empty0", [] { return empty_graph(0); }},
      {"empty1", [] { return empty_graph(1); }},
      {"isolated100", [] { return empty_graph(100); }},
      {"single_edge",
       [] {
         return from_edges(2, {{0, 1}});
       }},
      {"triangle",
       [] {
         return from_edges(3, {{0, 1}, {1, 2}, {2, 0}});
       }},
      {"two_triangles",
       [] {
         return from_edges(6, {{0, 1}, {1, 2}, {2, 0}, {3, 4}, {4, 5}, {5, 3}});
       }},
      {"line1000", [] { return line_graph(1000); }},
      {"line_relabel1000", [] { return line_graph(1000, true, 3); }},
      {"cycle999", [] { return cycle_graph(999); }},
      {"star2000", [] { return star_graph(2000); }},
      {"complete60", [] { return complete_graph(60); }},
      {"binary_tree4095", [] { return binary_tree_graph(4095); }},
      {"grid2d_40x25", [] { return grid2d_graph(40, 25); }},
      {"grid3d_4096", [] { return grid3d_graph(4096, true, 5); }},
      {"random5k_deg5", [] { return random_graph(5000, 5, 7); }},
      {"random5k_deg2", [] { return random_graph(5000, 2, 9); }},
      {"rmat8k", [] { return rmat_graph(8192, 40000, 11); }},
      {"rmat_sparse", [] { return rmat_graph(4096, 6000, 13); }},
      {"er_p001", [] { return erdos_renyi(800, 0.001, 15); }},
      {"er_p01", [] { return erdos_renyi(300, 0.01, 17); }},
      {"cliques_bridged", [] { return cliques_with_bridges(20, 12); }},
      {"rmat2_dense", [] { return rmat_graph(512, 20000, 19); }},
      {"orkut_like", [] { return social_network_like(600, 23); }},
      {"grid2d_tall", [] { return grid2d_graph(500, 4); }},
      {"two_cliques_bridge", [] { return cliques_with_bridges(2, 30); }},
      {"many_components",
       [] {
         std::vector<pcc::graph::graph> parts;
         parts.push_back(cycle_graph(50));
         parts.push_back(star_graph(40));
         parts.push_back(complete_graph(20));
         parts.push_back(empty_graph(30));
         parts.push_back(line_graph(60));
         parts.push_back(binary_tree_graph(31));
         return disjoint_union(parts);
       }},
  };
}

// Pretty parameter names for INSTANTIATE_TEST_SUITE_P.
struct graph_case_name {
  template <typename ParamType>
  std::string operator()(const ::testing::TestParamInfo<ParamType>& info) const {
    return info.param.name;
  }
};

}  // namespace pcc::testing
