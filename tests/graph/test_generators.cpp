// Every generator: structural invariants (symmetry, no self loops/dups),
// expected degrees and component structure.

#include <gtest/gtest.h>

#include <algorithm>

#include "graph/generators.hpp"
#include "graph/stats.hpp"

namespace pcc::graph {
namespace {

void expect_clean(const graph& g) {
  EXPECT_TRUE(is_symmetric(g));
  EXPECT_FALSE(has_self_loops(g));
  EXPECT_FALSE(has_duplicate_edges(g));
}

TEST(RandomGraph, DegreeAndCleanliness) {
  const graph g = random_graph(10000, 5, 1);
  EXPECT_EQ(g.num_vertices(), 10000u);
  expect_clean(g);
  const auto ds = compute_degree_stats(g);
  // Each vertex draws 5 targets; symmetrization roughly doubles, dedup and
  // self-loop removal trim slightly.
  EXPECT_GT(ds.mean, 8.0);
  EXPECT_LT(ds.mean, 10.0);
  // A random graph with average degree ~10 is connected w.h.p.
  EXPECT_LE(count_components(g), 3u);
}

TEST(RandomGraph, DifferentSeedsDiffer) {
  const graph a = random_graph(1000, 3, 1);
  const graph b = random_graph(1000, 3, 2);
  EXPECT_NE(a.edges(), b.edges());
  EXPECT_EQ(random_graph(1000, 3, 1).edges(), a.edges());  // deterministic
}

TEST(RmatGraph, PowerLawishAndClean) {
  const graph g = rmat_graph(16384, 80000, 3);
  expect_clean(g);
  EXPECT_EQ(g.num_vertices(), 16384u);
  const auto ds = compute_degree_stats(g);
  // Skewed degrees: the max is far above the mean.
  EXPECT_GT(static_cast<double>(ds.max), 8.0 * ds.mean);
  // rMat graphs have many isolated vertices / components (Table 2's rMat
  // has over 13M components at scale).
  EXPECT_GT(count_components(g), g.num_vertices() / 50);
}

TEST(RmatGraph, DenseVariantIsDenser) {
  const graph sparse = rmat_graph(4096, 5 * 4096, 7);
  const graph dense = rmat_graph(1024, 100 * 1024, 7);
  EXPECT_GT(compute_degree_stats(dense).mean,
            4.0 * compute_degree_stats(sparse).mean);
}

TEST(Grid3d, TorusDegreesExactlySix) {
  const graph g = grid3d_graph(4096, /*randomize_labels=*/false);
  EXPECT_EQ(g.num_vertices(), 4096u);  // 16^3
  expect_clean(g);
  const auto ds = compute_degree_stats(g);
  EXPECT_EQ(ds.min, 6u);
  EXPECT_EQ(ds.max, 6u);
  EXPECT_EQ(count_components(g), 1u);
}

TEST(Grid3d, RandomizedLabelsKeepStructure) {
  const graph g = grid3d_graph(1000, true, 11);
  const auto ds = compute_degree_stats(g);
  EXPECT_EQ(ds.min, 6u);
  EXPECT_EQ(ds.max, 6u);
  EXPECT_EQ(count_components(g), 1u);
}

TEST(Grid3d, RoundsToNearestCube) {
  EXPECT_EQ(grid3d_graph(4000, false).num_vertices(), 4096u);  // 16^3
}

TEST(LineGraph, PathStructure) {
  const graph g = line_graph(5000);
  expect_clean(g);
  EXPECT_EQ(g.num_edges(), 2 * 4999u);
  const auto ds = compute_degree_stats(g);
  EXPECT_EQ(ds.min, 1u);
  EXPECT_EQ(ds.max, 2u);
  EXPECT_EQ(count_components(g), 1u);
  // Diameter is n-1: eccentricity from an endpoint.
  EXPECT_EQ(bfs_eccentricity(g, 0), 4999u);
}

TEST(LineGraph, Degenerate) {
  EXPECT_EQ(line_graph(0).num_vertices(), 0u);
  EXPECT_EQ(line_graph(1).num_edges(), 0u);
  EXPECT_EQ(line_graph(2).num_edges(), 2u);
}

TEST(SocialNetworkLike, DenseSkewedSingleGiant) {
  const graph g = social_network_like(2048, 13);
  expect_clean(g);
  const auto ds = compute_degree_stats(g);
  EXPECT_GT(ds.mean, 20.0);  // com-Orkut density regime
  const auto sizes = component_sizes(reference_components(g));
  EXPECT_GT(sizes[0], g.num_vertices() / 2);  // giant component
}

TEST(CycleGraph, AllDegreeTwoOneComponent) {
  const graph g = cycle_graph(100);
  const auto ds = compute_degree_stats(g);
  EXPECT_EQ(ds.min, 2u);
  EXPECT_EQ(ds.max, 2u);
  EXPECT_EQ(count_components(g), 1u);
}

TEST(StarGraph, HubAndLeaves) {
  const graph g = star_graph(100);
  EXPECT_EQ(g.degree(0), 99u);
  for (vertex_id v = 1; v < 100; ++v) EXPECT_EQ(g.degree(v), 1u);
}

TEST(CompleteGraph, AllPairs) {
  const graph g = complete_graph(20);
  EXPECT_EQ(g.num_edges(), 20u * 19u);
  expect_clean(g);
}

TEST(BinaryTree, TreeEdgeCount) {
  const graph g = binary_tree_graph(127);
  EXPECT_EQ(g.num_undirected_edges(), 126u);
  EXPECT_EQ(count_components(g), 1u);
}

TEST(Grid2d, Structure) {
  const graph g = grid2d_graph(10, 7);
  EXPECT_EQ(g.num_vertices(), 70u);
  EXPECT_EQ(g.num_undirected_edges(), 10 * 6 + 9 * 7u);
  EXPECT_EQ(count_components(g), 1u);
}

TEST(CliquesWithBridges, SingleComponentDenseBlocks) {
  const graph g = cliques_with_bridges(5, 6);
  EXPECT_EQ(g.num_vertices(), 30u);
  EXPECT_EQ(count_components(g), 1u);
  EXPECT_EQ(g.num_undirected_edges(), 5 * 15 + 4u);
}

TEST(DisjointUnion, ComponentsAdd) {
  const graph g =
      disjoint_union({cycle_graph(10), complete_graph(5), empty_graph(4)});
  EXPECT_EQ(g.num_vertices(), 19u);
  EXPECT_EQ(count_components(g), 6u);
  expect_clean(g);
}

TEST(ErdosRenyi, EdgeCountNearExpectation) {
  const graph g = erdos_renyi(400, 0.05, 17);
  const double expected = 0.05 * 400 * 399 / 2;
  EXPECT_GT(g.num_undirected_edges(), expected * 0.8);
  EXPECT_LT(g.num_undirected_edges(), expected * 1.2);
  expect_clean(g);
}

TEST(EmptyGraph, NoEdges) {
  const graph g = empty_graph(42);
  EXPECT_EQ(g.num_vertices(), 42u);
  EXPECT_EQ(g.num_edges(), 0u);
  EXPECT_EQ(count_components(g), 42u);
}

}  // namespace
}  // namespace pcc::graph
