// vertex_subset and the Ligra-lite edge_map: representation conversions,
// sparse/dense execution equivalence, early exit, and a BFS built on the
// abstraction checked against the standalone parallel BFS.

#include <gtest/gtest.h>

#include <algorithm>

#include "baselines/bfs.hpp"
#include "graph/edge_map.hpp"
#include "graph/generators.hpp"
#include "graph/vertex_subset.hpp"
#include "parallel/atomics.hpp"

namespace pcc::graph {
namespace {

TEST(VertexSubset, EmptySingleAll) {
  const auto e = vertex_subset::empty(10);
  EXPECT_EQ(e.size(), 0u);
  EXPECT_TRUE(e.empty());
  EXPECT_EQ(e.universe_size(), 10u);

  const auto s = vertex_subset::single(10, 7);
  EXPECT_EQ(s.size(), 1u);
  EXPECT_TRUE(s.contains(7));
  EXPECT_FALSE(s.contains(6));

  const auto a = vertex_subset::all(10);
  EXPECT_EQ(a.size(), 10u);
  EXPECT_NEAR(a.density(), 1.0, 1e-12);
}

TEST(VertexSubset, SparseToDenseRoundTrip) {
  auto s = vertex_subset::from_sparse(8, {1, 3, 5});
  EXPECT_EQ(s.dense(), (std::vector<uint8_t>{0, 1, 0, 1, 0, 1, 0, 0}));
  EXPECT_EQ(s.size(), 3u);
}

TEST(VertexSubset, DenseToSparseRoundTrip) {
  auto s = vertex_subset::from_dense({0, 1, 0, 0, 1, 1});
  EXPECT_EQ(s.size(), 3u);
  EXPECT_EQ(s.sparse(), (std::vector<vertex_id>{1, 4, 5}));
}

TEST(VertexSubset, FromDenseWithExplicitCount) {
  auto s = vertex_subset::from_dense({1, 1, 0}, 2);
  EXPECT_EQ(s.size(), 2u);
}

TEST(VertexSubset, ForEachVisitsAllMembersOnce) {
  auto s = vertex_subset::from_sparse(100, {2, 50, 99});
  std::vector<uint8_t> seen(100, 0);
  s.for_each([&](vertex_id v) { parallel::fetch_add<uint8_t>(&seen[v], 1); });
  EXPECT_EQ(seen[2] + seen[50] + seen[99], 3);
  EXPECT_EQ(std::count(seen.begin(), seen.end(), 0), 97);
}

TEST(VertexFilter, KeepsPredicate) {
  auto s = vertex_subset::from_sparse(10, {1, 2, 3, 4});
  auto f = vertex_filter(s, [](vertex_id v) { return v % 2 == 0; });
  EXPECT_EQ(f.sparse(), (std::vector<vertex_id>{2, 4}));
}

// BFS on edge_map, in all three execution modes, vs the standalone BFS.
std::vector<uint32_t> edge_map_bfs(const graph& g, vertex_id source,
                                   edge_map_options::mode force) {
  const size_t n = g.num_vertices();
  constexpr uint32_t kInf = ~0u;
  std::vector<uint32_t> dist(n, kInf);
  dist[source] = 0;
  vertex_subset frontier = vertex_subset::single(n, source);
  uint32_t level = 0;
  edge_map_options opt;
  opt.force = force;
  while (!frontier.empty()) {
    ++level;
    frontier = edge_map(
        g, frontier,
        [&](vertex_id, vertex_id d) {
          return parallel::cas(&dist[d], kInf, level);
        },
        [&](vertex_id d) { return parallel::atomic_load(&dist[d]) == kInf; },
        opt);
  }
  return dist;
}

class EdgeMapBfsModes
    : public ::testing::TestWithParam<edge_map_options::mode> {};

TEST_P(EdgeMapBfsModes, MatchesStandaloneBfs) {
  for (const auto& g :
       {random_graph(3000, 4, 1), grid3d_graph(3000, true, 2),
        line_graph(500), star_graph(200),
        disjoint_union({cycle_graph(40), cycle_graph(30)})}) {
    const auto expected = pcc::baselines::parallel_bfs_distances(g, 0);
    EXPECT_EQ(edge_map_bfs(g, 0, GetParam()), expected);
  }
}

INSTANTIATE_TEST_SUITE_P(Modes, EdgeMapBfsModes,
                         ::testing::Values(edge_map_options::mode::kAuto,
                                           edge_map_options::mode::kAlwaysSparse,
                                           edge_map_options::mode::kAlwaysDense));

TEST(EdgeMap, OutputContainsExactlyActivatedVertices) {
  // One round of BFS from the hub of a star activates all leaves.
  const graph g = star_graph(50);
  std::vector<uint8_t> visited(50, 0);
  visited[0] = 1;
  auto next = edge_map(
      g, vertex_subset::single(50, 0),
      [&](vertex_id, vertex_id d) { return parallel::cas(&visited[d], uint8_t{0}, uint8_t{1}); },
      [&](vertex_id d) { return visited[d] == 0; });
  EXPECT_EQ(next.size(), 49u);
}

TEST(EdgeMap, CondFalseSuppressesUpdates) {
  const graph g = complete_graph(20);
  size_t calls = 0;
  auto next = edge_map(
      g, vertex_subset::all(20),
      [&](vertex_id, vertex_id) {
        parallel::fetch_add<size_t>(&calls, 1);
        return true;
      },
      [](vertex_id) { return false; },
      {.force = edge_map_options::mode::kAlwaysSparse});
  EXPECT_EQ(calls, 0u);
  EXPECT_TRUE(next.empty());
}

TEST(EdgeMap, DenseEarlyExitStopsAfterSettled) {
  // cond turns false after the first update; on a complete graph the dense
  // scan must not keep updating a settled destination.
  const graph g = complete_graph(64);
  std::vector<uint32_t> hits(64, 0);
  (void)edge_map(
      g, vertex_subset::all(64),
      [&](vertex_id, vertex_id d) {
        parallel::fetch_add<uint32_t>(&hits[d], 1);
        return true;
      },
      [&](vertex_id d) { return hits[d] == 0; },
      {.force = edge_map_options::mode::kAlwaysDense});
  for (size_t v = 0; v < 64; ++v) EXPECT_EQ(hits[v], 1u) << v;
}

TEST(EdgeMap, AutoSwitchesOnDensity) {
  // With threshold 0.5: a 60% frontier goes dense (observable because the
  // dense path serializes updates per destination).
  const graph g = complete_graph(10);
  auto frontier = vertex_subset::from_sparse(10, {0, 1, 2, 3, 4, 5});
  std::vector<uint32_t> hits(10, 0);
  edge_map_options opt;
  opt.dense_threshold = 0.5;
  (void)edge_map(
      g, frontier,
      [&](vertex_id, vertex_id d) {
        parallel::fetch_add<uint32_t>(&hits[d], 1);
        return true;
      },
      [&](vertex_id d) { return hits[d] == 0; }, opt);
  // Dense + early-exit: every reachable destination hit exactly once.
  for (size_t v = 0; v < 10; ++v) EXPECT_LE(hits[v], 1u);
}

TEST(EdgeMap, EmptyFrontierYieldsEmpty) {
  const graph g = cycle_graph(10);
  auto next = edge_map(
      g, vertex_subset::empty(10),
      [](vertex_id, vertex_id) { return true; },
      [](vertex_id) { return true; });
  EXPECT_TRUE(next.empty());
}

}  // namespace
}  // namespace pcc::graph
