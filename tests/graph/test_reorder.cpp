// Locality layer: permutation validity per mode, the ordering property
// each mode promises, isomorphism of the relabeled CSR, and the label
// map-back contract (see src/graph/reorder.hpp).

#include <gtest/gtest.h>

#include <algorithm>
#include <numeric>
#include <vector>

#include "graph/generators.hpp"
#include "graph/reorder.hpp"
#include "test_helpers.hpp"

namespace pcc {
namespace {

using graph::build_reorder_perm_into;
using graph::reorder_graph;
using graph::reorder_mode;
using graph::reorder_result;

constexpr reorder_mode kAllModes[] = {reorder_mode::kNone, reorder_mode::kDegree,
                                      reorder_mode::kHub, reorder_mode::kBfs};

// True iff p is a permutation of [0, n).
bool is_permutation_of_iota(std::span<const vertex_id> p) {
  std::vector<uint8_t> seen(p.size(), 0);
  for (const vertex_id x : p) {
    if (x >= p.size() || seen[x]) return false;
    seen[x] = 1;
  }
  return true;
}

TEST(Reorder, NameRoundTrip) {
  for (const reorder_mode m : kAllModes) {
    reorder_mode parsed;
    ASSERT_TRUE(graph::reorder_from_name(graph::reorder_name(m), &parsed))
        << graph::reorder_name(m);
    EXPECT_EQ(parsed, m);
  }
  reorder_mode out = reorder_mode::kDegree;
  EXPECT_FALSE(graph::reorder_from_name("degreee", &out));
  EXPECT_FALSE(graph::reorder_from_name("", &out));
  EXPECT_FALSE(graph::reorder_from_name("auto", &out));  // policy, not a mode
  EXPECT_EQ(out, reorder_mode::kDegree);  // untouched on failure
}

class ReorderCorpus : public ::testing::TestWithParam<testing::graph_case> {};

TEST_P(ReorderCorpus, PermAndInvAreInversePermutations) {
  const graph::graph g = GetParam().make();
  for (const reorder_mode m : kAllModes) {
    const reorder_result rr = reorder_graph(g, m);
    ASSERT_EQ(rr.perm.size(), g.num_vertices());
    ASSERT_EQ(rr.inv.size(), g.num_vertices());
    ASSERT_TRUE(is_permutation_of_iota(rr.perm)) << graph::reorder_name(m);
    for (size_t v = 0; v < g.num_vertices(); ++v) {
      ASSERT_EQ(rr.inv[rr.perm[v]], v) << graph::reorder_name(m);
    }
  }
}

TEST_P(ReorderCorpus, RelabeledGraphIsIsomorphicUnderPerm) {
  const graph::graph g = GetParam().make();
  for (const reorder_mode m : kAllModes) {
    const reorder_result rr = reorder_graph(g, m);
    ASSERT_EQ(rr.g.num_vertices(), g.num_vertices());
    ASSERT_EQ(rr.g.num_edges(), g.num_edges());
    for (size_t v = 0; v < g.num_vertices(); ++v) {
      // neighbors(perm[v]) in rr.g == perm-image of neighbors(v), as
      // multisets (relabel_into preserves list order, but multiset
      // equality is the isomorphism contract).
      const auto old_nbrs = g.neighbors(static_cast<vertex_id>(v));
      const auto new_nbrs = rr.g.neighbors(rr.perm[v]);
      ASSERT_EQ(old_nbrs.size(), new_nbrs.size());
      std::vector<vertex_id> expect(old_nbrs.begin(), old_nbrs.end());
      for (vertex_id& w : expect) w = rr.perm[w];
      std::vector<vertex_id> got(new_nbrs.begin(), new_nbrs.end());
      std::sort(expect.begin(), expect.end());
      std::sort(got.begin(), got.end());
      ASSERT_EQ(expect, got) << graph::reorder_name(m) << " v=" << v;
    }
  }
}

TEST_P(ReorderCorpus, MapLabelsRoundTrip) {
  // Label every relabeled vertex with itself; mapping back must yield a
  // labeling where out[old] is in old's component — here, out[old] = old.
  const graph::graph g = GetParam().make();
  const size_t n = g.num_vertices();
  for (const reorder_mode m : kAllModes) {
    const reorder_result rr = reorder_graph(g, m);
    std::vector<vertex_id> labels_new(n);
    std::iota(labels_new.begin(), labels_new.end(), 0);
    std::vector<vertex_id> out(n);
    graph::map_labels_to_original(labels_new, rr.perm, rr.inv, out);
    for (size_t v = 0; v < n; ++v) {
      ASSERT_EQ(out[v], v) << graph::reorder_name(m);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Corpus, ReorderCorpus,
                         ::testing::ValuesIn(testing::correctness_corpus()),
                         testing::graph_case_name{});

TEST(Reorder, NoneIsIdentity) {
  const graph::graph g = graph::rmat_graph(2048, 10000, 3);
  const reorder_result rr = reorder_graph(g, reorder_mode::kNone);
  for (size_t v = 0; v < g.num_vertices(); ++v) {
    ASSERT_EQ(rr.perm[v], v);
    ASSERT_EQ(rr.inv[v], v);
  }
  EXPECT_EQ(rr.g.offsets(), g.offsets());
  EXPECT_EQ(rr.g.edges(), g.edges());
}

TEST(Reorder, DegreeOrderIsDescendingWithStableTies) {
  for (const auto& make : {+[] { return graph::rmat_graph(4096, 30000, 7); },
                           +[] { return graph::star_graph(2000); },
                           +[] { return graph::random_graph(3000, 4, 9); }}) {
    const graph::graph g = make();
    const reorder_result rr = reorder_graph(g, reorder_mode::kDegree);
    for (size_t i = 0; i + 1 < g.num_vertices(); ++i) {
      const size_t da = g.degree(rr.inv[i]);
      const size_t db = g.degree(rr.inv[i + 1]);
      ASSERT_TRUE(da > db || (da == db && rr.inv[i] < rr.inv[i + 1]))
          << "position " << i;
    }
  }
}

TEST(Reorder, HubModePacksHubsFirstPreservingRelativeOrder) {
  const graph::graph g = graph::rmat_graph(8192, 60000, 11);
  const size_t threshold = graph::hub_degree_threshold(g);
  const reorder_result rr = reorder_graph(g, reorder_mode::kHub);
  size_t num_hubs = 0;
  for (size_t v = 0; v < g.num_vertices(); ++v) {
    if (g.degree(static_cast<vertex_id>(v)) >= threshold) ++num_hubs;
  }
  ASSERT_GT(num_hubs, 0u);  // rMat at this density has hubs
  // The first num_hubs slots are exactly the hubs; both groups keep their
  // original relative order, so inv is increasing inside each group.
  for (size_t i = 0; i < g.num_vertices(); ++i) {
    const bool is_hub = g.degree(rr.inv[i]) >= threshold;
    ASSERT_EQ(is_hub, i < num_hubs) << "position " << i;
    if (i > 0 && i != num_hubs) {
      ASSERT_LT(rr.inv[i - 1], rr.inv[i]) << "position " << i;
    }
  }
}

TEST(Reorder, BfsModeIsDeterministicAndComponentContiguous) {
  std::vector<graph::graph> parts;
  parts.push_back(graph::cycle_graph(100));
  parts.push_back(graph::grid2d_graph(20, 15));
  parts.push_back(graph::empty_graph(10));
  parts.push_back(graph::binary_tree_graph(127));
  const graph::graph g = graph::disjoint_union(parts);

  const reorder_result a = reorder_graph(g, reorder_mode::kBfs);
  const reorder_result b = reorder_graph(g, reorder_mode::kBfs);
  EXPECT_EQ(a.perm, b.perm);  // deterministic

  // BFS from per-component roots in increasing id order: each component's
  // vertices occupy one contiguous block of new ids. Detect component
  // boundaries via a fresh BFS coloring in original id space.
  std::vector<vertex_id> comp(g.num_vertices(), kNoVertex);
  for (size_t r = 0; r < g.num_vertices(); ++r) {
    if (comp[r] != kNoVertex) continue;
    std::vector<vertex_id> queue{static_cast<vertex_id>(r)};
    comp[r] = static_cast<vertex_id>(r);
    while (!queue.empty()) {
      const vertex_id u = queue.back();
      queue.pop_back();
      for (const vertex_id w : g.neighbors(u)) {
        if (comp[w] == kNoVertex) {
          comp[w] = static_cast<vertex_id>(r);
          queue.push_back(w);
        }
      }
    }
  }
  std::vector<uint8_t> comp_closed(g.num_vertices(), 0);
  vertex_id current = kNoVertex;
  for (size_t i = 0; i < g.num_vertices(); ++i) {
    const vertex_id c = comp[a.inv[i]];
    if (c != current) {
      ASSERT_FALSE(comp_closed[c]) << "component " << c << " split at " << i;
      if (current != kNoVertex) comp_closed[current] = 1;
      current = c;
    }
  }
}

TEST(Reorder, WorkspaceBuildMatchesOneShot) {
  // The workspace-backed entry point must agree with the convenience
  // wrapper (which the registry path uses via build_reorder_perm_into).
  const graph::graph g = graph::social_network_like(800, 13);
  parallel::workspace ws;
  std::vector<vertex_id> perm(g.num_vertices()), inv(g.num_vertices());
  for (const reorder_mode m : kAllModes) {
    build_reorder_perm_into(g, m, perm, inv, ws);
    const reorder_result rr = reorder_graph(g, m);
    EXPECT_EQ(perm, rr.perm) << graph::reorder_name(m);
    EXPECT_EQ(inv, rr.inv) << graph::reorder_name(m);
  }
}

TEST(Reorder, HubThresholdFormula) {
  // star: one vertex of degree n-1, the rest degree 1; average directed
  // degree 2(n-1)/n < 2, so the threshold bottoms out at kHubMinDegree.
  const graph::graph star = graph::star_graph(1000);
  EXPECT_EQ(graph::hub_degree_threshold(star), graph::kHubMinDegree);
  // complete graph: every degree equals the average, so the threshold is
  // kHubDegreeFactor * (n - 1) and nothing qualifies as a hub.
  const graph::graph k = graph::complete_graph(32);
  EXPECT_EQ(graph::hub_degree_threshold(k), graph::kHubDegreeFactor * 31);
}

}  // namespace
}  // namespace pcc
