// Edge-list -> CSR builder: symmetrization, dedup, self-loop removal, and
// agreement with an independent brute-force construction (this last check
// is what catches "the oracle ran on the same broken graph" bugs).

#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <set>

#include "graph/builder.hpp"
#include "graph/generators.hpp"
#include "graph/stats.hpp"
#include "parallel/random.hpp"

namespace pcc::graph {
namespace {

// Reference construction via std::map/std::set.
graph brute_force_build(size_t n, const edge_list& edges,
                        const build_options& opt) {
  std::map<vertex_id, std::vector<vertex_id>> adj;
  std::set<std::pair<vertex_id, vertex_id>> seen;
  auto add = [&](vertex_id u, vertex_id v) {
    if (opt.remove_self_loops && u == v) return;
    if (opt.remove_duplicates && !seen.insert({u, v}).second) return;
    adj[u].push_back(v);
  };
  for (auto [u, v] : edges) {
    add(u, v);
    if (opt.symmetrize) add(v, u);
  }
  std::vector<edge_id> offsets(n + 1, 0);
  std::vector<vertex_id> flat;
  for (size_t u = 0; u < n; ++u) {
    offsets[u] = flat.size();
    auto it = adj.find(static_cast<vertex_id>(u));
    if (it != adj.end()) {
      std::sort(it->second.begin(), it->second.end());
      flat.insert(flat.end(), it->second.begin(), it->second.end());
    }
  }
  offsets[n] = flat.size();
  return graph(std::move(offsets), std::move(flat));
}

void expect_same_graph(const graph& a, const graph& b) {
  ASSERT_EQ(a.num_vertices(), b.num_vertices());
  ASSERT_EQ(a.num_edges(), b.num_edges());
  for (size_t v = 0; v < a.num_vertices(); ++v) {
    std::vector<vertex_id> na(a.neighbors(static_cast<vertex_id>(v)).begin(),
                              a.neighbors(static_cast<vertex_id>(v)).end());
    std::vector<vertex_id> nb(b.neighbors(static_cast<vertex_id>(v)).begin(),
                              b.neighbors(static_cast<vertex_id>(v)).end());
    std::sort(na.begin(), na.end());
    std::sort(nb.begin(), nb.end());
    ASSERT_EQ(na, nb) << "adjacency mismatch at vertex " << v;
  }
}

TEST(Builder, SymmetrizesAndSorts) {
  const graph g = from_edges(4, {{2, 0}, {0, 1}, {3, 1}});
  EXPECT_EQ(g.num_edges(), 6u);
  EXPECT_TRUE(is_symmetric(g));
  // Adjacency lists come out sorted.
  for (size_t v = 0; v < 4; ++v) {
    const auto nb = g.neighbors(static_cast<vertex_id>(v));
    EXPECT_TRUE(std::is_sorted(nb.begin(), nb.end()));
  }
}

TEST(Builder, RemovesSelfLoopsAndDuplicates) {
  const graph g = from_edges(3, {{0, 0}, {0, 1}, {1, 0}, {0, 1}, {2, 2}});
  EXPECT_FALSE(has_self_loops(g));
  EXPECT_FALSE(has_duplicate_edges(g));
  EXPECT_EQ(g.num_edges(), 2u);  // just 0<->1
}

TEST(Builder, KeepsSelfLoopsWhenAsked) {
  const graph g = from_edges(2, {{0, 0}, {0, 1}},
                             {.symmetrize = true,
                              .remove_self_loops = false,
                              .remove_duplicates = true});
  EXPECT_TRUE(has_self_loops(g));
}

TEST(Builder, KeepsDuplicatesWhenAsked) {
  const graph g = from_edges(2, {{0, 1}, {0, 1}},
                             {.symmetrize = false,
                              .remove_self_loops = true,
                              .remove_duplicates = false});
  EXPECT_TRUE(has_duplicate_edges(g));
  EXPECT_EQ(g.num_edges(), 2u);
}

TEST(Builder, EmptyInputs) {
  EXPECT_EQ(from_edges(0, {}).num_vertices(), 0u);
  const graph g = from_edges(5, {});
  EXPECT_EQ(g.num_vertices(), 5u);
  EXPECT_EQ(g.num_edges(), 0u);
}

TEST(Builder, MatchesBruteForceOnRandomInputs) {
  parallel::rng gen(77);
  for (uint64_t trial = 0; trial < 12; ++trial) {
    const size_t n = 2 + gen.bounded(1000 * trial, 300);
    const size_t m = gen.bounded(1000 * trial + 1, 4 * n + 1);
    edge_list edges(m);
    for (size_t i = 0; i < m; ++i) {
      edges[i] = {static_cast<vertex_id>(gen.bounded(3 * i + trial, n)),
                  static_cast<vertex_id>(gen.bounded(3 * i + trial + 1, n))};
    }
    for (bool sym : {true, false}) {
      for (bool dedup : {true, false}) {
        const build_options opt{.symmetrize = sym,
                                .remove_self_loops = true,
                                .remove_duplicates = dedup};
        expect_same_graph(from_edges(n, edge_list(edges), opt),
                          brute_force_build(n, edges, opt));
      }
    }
  }
}

TEST(Builder, LargeGraphSortedBySource) {
  // Exercises the parallel radix-sort path (n above the serial cutoff).
  const graph g = random_graph(30000, 4, 5);
  EXPECT_TRUE(is_symmetric(g));
  EXPECT_FALSE(has_duplicate_edges(g));
  EXPECT_FALSE(has_self_loops(g));
}

TEST(RelabelRandomly, PreservesStructure) {
  const graph g = cliques_with_bridges(6, 8);
  const graph h = relabel_randomly(g, 9);
  EXPECT_EQ(h.num_vertices(), g.num_vertices());
  EXPECT_EQ(h.num_edges(), g.num_edges());
  EXPECT_TRUE(is_symmetric(h));
  // Degree multiset is invariant under relabeling.
  std::vector<size_t> da, db;
  for (size_t v = 0; v < g.num_vertices(); ++v) {
    da.push_back(g.degree(static_cast<vertex_id>(v)));
    db.push_back(h.degree(static_cast<vertex_id>(v)));
  }
  std::sort(da.begin(), da.end());
  std::sort(db.begin(), db.end());
  EXPECT_EQ(da, db);
  // Component-size multiset too.
  auto sa = component_sizes(reference_components(g));
  auto sb = component_sizes(reference_components(h));
  EXPECT_EQ(sa, sb);
}

TEST(FromSortedPairs, BuildsExactCsr) {
  // (0,1),(0,2),(2,0) packed and pre-sorted.
  const std::vector<uint64_t> pairs = {
      (0ull << 32) | 1, (0ull << 32) | 2, (2ull << 32) | 0};
  const graph g = from_sorted_pairs(3, pairs);
  EXPECT_EQ(g.degree(0), 2u);
  EXPECT_EQ(g.degree(1), 0u);
  EXPECT_EQ(g.degree(2), 1u);
  EXPECT_EQ(g.neighbors(2)[0], 0u);
}

}  // namespace
}  // namespace pcc::graph
