// Structural queries: degree stats, symmetry/self-loop/duplicate checks,
// the sequential reference-components oracle itself, eccentricity.

#include <gtest/gtest.h>

#include "graph/builder.hpp"
#include "graph/generators.hpp"
#include "graph/stats.hpp"

namespace pcc::graph {
namespace {

TEST(DegreeStats, MixedDegrees) {
  const graph g = star_graph(11);  // hub degree 10, leaves degree 1
  const auto ds = compute_degree_stats(g);
  EXPECT_EQ(ds.min, 1u);
  EXPECT_EQ(ds.max, 10u);
  EXPECT_NEAR(ds.mean, 20.0 / 11.0, 1e-9);
  EXPECT_EQ(ds.isolated, 0u);
}

TEST(DegreeStats, CountsIsolated) {
  const graph g = disjoint_union({empty_graph(3), cycle_graph(4)});
  EXPECT_EQ(compute_degree_stats(g).isolated, 3u);
}

TEST(DegreeStats, EmptyGraph) {
  const auto ds = compute_degree_stats(empty_graph(0));
  EXPECT_EQ(ds.min, 0u);
  EXPECT_EQ(ds.max, 0u);
}

TEST(Symmetry, DetectsAsymmetry) {
  // Directed edge only.
  const graph g = from_edges(2, {{0, 1}},
                             {.symmetrize = false,
                              .remove_self_loops = true,
                              .remove_duplicates = true});
  EXPECT_FALSE(is_symmetric(g));
  EXPECT_TRUE(is_symmetric(from_edges(2, {{0, 1}})));
}

TEST(SelfLoops, Detection) {
  EXPECT_FALSE(has_self_loops(cycle_graph(5)));
  const graph g = from_edges(2, {{1, 1}},
                             {.symmetrize = false,
                              .remove_self_loops = false,
                              .remove_duplicates = false});
  EXPECT_TRUE(has_self_loops(g));
}

TEST(Duplicates, Detection) {
  EXPECT_FALSE(has_duplicate_edges(complete_graph(5)));
  const graph g = from_edges(2, {{0, 1}, {0, 1}},
                             {.symmetrize = false,
                              .remove_self_loops = false,
                              .remove_duplicates = false});
  EXPECT_TRUE(has_duplicate_edges(g));
}

TEST(ReferenceComponents, KnownPartition) {
  // {0,1,2} triangle, {3,4} edge, {5} isolated.
  const graph g = from_edges(6, {{0, 1}, {1, 2}, {2, 0}, {3, 4}});
  const auto labels = reference_components(g);
  EXPECT_EQ(labels[0], labels[1]);
  EXPECT_EQ(labels[1], labels[2]);
  EXPECT_EQ(labels[3], labels[4]);
  EXPECT_NE(labels[0], labels[3]);
  EXPECT_NE(labels[0], labels[5]);
  EXPECT_NE(labels[3], labels[5]);
  // Labels are the smallest member id (BFS from low ids first).
  EXPECT_EQ(labels[0], 0u);
  EXPECT_EQ(labels[3], 3u);
  EXPECT_EQ(labels[5], 5u);
}

TEST(CountComponents, Various) {
  EXPECT_EQ(count_components(empty_graph(4)), 4u);
  EXPECT_EQ(count_components(cycle_graph(9)), 1u);
  EXPECT_EQ(count_components(disjoint_union({cycle_graph(3), cycle_graph(4),
                                             empty_graph(2)})),
            4u);
}

TEST(Eccentricity, PathEndpoints) {
  const graph g = line_graph(100);
  EXPECT_EQ(bfs_eccentricity(g, 0), 99u);
  EXPECT_EQ(bfs_eccentricity(g, 50), 50u);
}

TEST(Eccentricity, IgnoresOtherComponents) {
  const graph g = disjoint_union({line_graph(10), line_graph(50)});
  EXPECT_EQ(bfs_eccentricity(g, 0), 9u);
}

TEST(ComponentSizes, SortedDescending) {
  const graph g =
      disjoint_union({cycle_graph(20), cycle_graph(5), empty_graph(1)});
  const auto sizes = component_sizes(reference_components(g));
  EXPECT_EQ(sizes, (std::vector<size_t>{20, 5, 1}));
}

}  // namespace
}  // namespace pcc::graph
