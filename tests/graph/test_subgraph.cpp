// Subgraph extraction: induced subgraphs, component extraction, largest
// component — structure, renumbering, id maps.

#include <gtest/gtest.h>

#include "graph/generators.hpp"
#include "graph/stats.hpp"
#include "graph/subgraph.hpp"

namespace pcc::graph {
namespace {

TEST(InducedSubgraph, KeepNothingAndEverything) {
  const graph g = cycle_graph(10);
  const graph none = induced_subgraph(g, std::vector<uint8_t>(10, 0));
  EXPECT_EQ(none.num_vertices(), 0u);
  EXPECT_EQ(none.num_edges(), 0u);
  const graph all = induced_subgraph(g, std::vector<uint8_t>(10, 1));
  EXPECT_EQ(all.num_vertices(), 10u);
  EXPECT_EQ(all.num_edges(), g.num_edges());
}

TEST(InducedSubgraph, DropsCrossEdgesAndRenumbers) {
  // Path 0-1-2-3-4; keep {0, 1, 3, 4}: edges 0-1 and 3-4 survive.
  const graph g = line_graph(5);
  std::vector<vertex_id> old_ids;
  const graph s = induced_subgraph(g, {1, 1, 0, 1, 1}, &old_ids);
  EXPECT_EQ(s.num_vertices(), 4u);
  EXPECT_EQ(s.num_undirected_edges(), 2u);
  EXPECT_EQ(old_ids, (std::vector<vertex_id>{0, 1, 3, 4}));
  EXPECT_TRUE(is_symmetric(s));
  // New vertex 1 (old 1) connects only to new 0 (old 0).
  ASSERT_EQ(s.degree(1), 1u);
  EXPECT_EQ(s.neighbors(1)[0], 0u);
}

TEST(InducedSubgraph, PreservesInternalStructure) {
  // Keep one clique out of a bridged chain; it comes back complete.
  const graph g = cliques_with_bridges(3, 5);
  std::vector<uint8_t> keep(15, 0);
  for (size_t v = 5; v < 10; ++v) keep[v] = 1;  // middle clique
  const graph s = induced_subgraph(g, keep);
  EXPECT_EQ(s.num_vertices(), 5u);
  EXPECT_EQ(s.num_undirected_edges(), 10u);  // K5
}

TEST(ExtractComponent, PullsExactlyOneComponent) {
  const graph g = disjoint_union({cycle_graph(6), complete_graph(4),
                                  empty_graph(2)});
  const auto labels = reference_components(g);
  std::vector<vertex_id> old_ids;
  const graph comp = extract_component(g, labels, labels[6], &old_ids);
  EXPECT_EQ(comp.num_vertices(), 4u);
  EXPECT_EQ(comp.num_undirected_edges(), 6u);  // K4
  EXPECT_EQ(old_ids, (std::vector<vertex_id>{6, 7, 8, 9}));
}

TEST(LargestComponent, PicksTheBiggest) {
  const graph g = disjoint_union({cycle_graph(5), grid2d_graph(4, 5),
                                  star_graph(3)});
  std::vector<vertex_id> old_ids;
  const graph big = largest_component(g, &old_ids);
  EXPECT_EQ(big.num_vertices(), 20u);
  EXPECT_EQ(count_components(big), 1u);
  // old ids are the grid's vertices (offset 5).
  EXPECT_EQ(old_ids.front(), 5u);
  EXPECT_EQ(old_ids.back(), 24u);
}

TEST(LargestComponent, EmptyGraph) {
  EXPECT_EQ(largest_component(empty_graph(0)).num_vertices(), 0u);
  // All-isolated graph: any single vertex qualifies.
  EXPECT_EQ(largest_component(empty_graph(5)).num_vertices(), 1u);
}

TEST(InducedSubgraph, LargeRandomKeepHalf) {
  const graph g = random_graph(20000, 4, 3);
  std::vector<uint8_t> keep(g.num_vertices());
  for (size_t v = 0; v < keep.size(); ++v) keep[v] = v % 2;
  std::vector<vertex_id> old_ids;
  const graph s = induced_subgraph(g, keep, &old_ids);
  EXPECT_EQ(s.num_vertices(), g.num_vertices() / 2);
  EXPECT_TRUE(is_symmetric(s));
  // Spot-check adjacency against the original.
  for (size_t v = 0; v < s.num_vertices(); v += 997) {
    for (vertex_id w : s.neighbors(static_cast<vertex_id>(v))) {
      const auto nbrs = g.neighbors(old_ids[v]);
      EXPECT_NE(std::find(nbrs.begin(), nbrs.end(), old_ids[w]), nbrs.end());
    }
  }
}

}  // namespace
}  // namespace pcc::graph
