// Graph I/O: round trips, format details, error handling.

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>

#include "graph/generators.hpp"
#include "graph/io.hpp"
#include "graph/stats.hpp"

namespace pcc::graph {
namespace {

class IoTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = std::filesystem::temp_directory_path() /
           ("pcc_io_test_" + std::to_string(::getpid()));
    std::filesystem::create_directories(dir_);
  }
  void TearDown() override { std::filesystem::remove_all(dir_); }

  std::string path(const std::string& name) const { return (dir_ / name).string(); }

  std::filesystem::path dir_;
};

TEST_F(IoTest, AdjacencyGraphRoundTrip) {
  const graph g = rmat_graph(512, 2000, 3);
  write_adjacency_graph(g, path("g.adj"));
  const graph h = read_adjacency_graph(path("g.adj"));
  EXPECT_EQ(h.offsets(), g.offsets());
  EXPECT_EQ(h.edges(), g.edges());
}

TEST_F(IoTest, AdjacencyGraphEmpty) {
  const graph g = empty_graph(7);
  write_adjacency_graph(g, path("e.adj"));
  const graph h = read_adjacency_graph(path("e.adj"));
  EXPECT_EQ(h.num_vertices(), 7u);
  EXPECT_EQ(h.num_edges(), 0u);
}

TEST_F(IoTest, AdjacencyGraphKnownBytes) {
  std::ofstream out(path("k.adj"));
  out << "AdjacencyGraph\n3\n4\n0\n2\n3\n1\n2\n0\n0\n";
  out.close();
  const graph g = read_adjacency_graph(path("k.adj"));
  EXPECT_EQ(g.num_vertices(), 3u);
  EXPECT_EQ(g.degree(0), 2u);
  EXPECT_EQ(g.neighbors(0)[1], 2u);
  EXPECT_EQ(g.neighbors(2)[0], 0u);
}

TEST_F(IoTest, AdjacencyGraphRejectsBadHeader) {
  std::ofstream(path("bad.adj")) << "WeightedAdjacencyGraph\n1\n0\n0\n";
  EXPECT_THROW(read_adjacency_graph(path("bad.adj")), std::runtime_error);
}

TEST_F(IoTest, AdjacencyGraphRejectsTruncation) {
  std::ofstream(path("trunc.adj")) << "AdjacencyGraph\n3\n4\n0\n2\n";
  EXPECT_THROW(read_adjacency_graph(path("trunc.adj")), std::runtime_error);
}

TEST_F(IoTest, AdjacencyGraphRejectsOutOfRangeTarget) {
  std::ofstream(path("oor.adj")) << "AdjacencyGraph\n2\n1\n0\n1\n5\n";
  EXPECT_THROW(read_adjacency_graph(path("oor.adj")), std::runtime_error);
}

TEST_F(IoTest, AdjacencyGraphRejectsNonMonotoneOffsets) {
  std::ofstream(path("mono.adj")) << "AdjacencyGraph\n3\n2\n0\n2\n1\n0\n0\n";
  EXPECT_THROW(read_adjacency_graph(path("mono.adj")), std::runtime_error);
}

TEST_F(IoTest, BinaryRoundTripExact) {
  const graph g = rmat_graph(2048, 9000, 7);
  write_binary_graph(g, path("g.badj"));
  const graph h = read_binary_graph(path("g.badj"));
  EXPECT_EQ(h.offsets(), g.offsets());
  EXPECT_EQ(h.edges(), g.edges());
}

TEST_F(IoTest, BinaryEmptyGraph) {
  write_binary_graph(empty_graph(5), path("e.badj"));
  const graph h = read_binary_graph(path("e.badj"));
  EXPECT_EQ(h.num_vertices(), 5u);
  EXPECT_EQ(h.num_edges(), 0u);
}

TEST_F(IoTest, BinaryRejectsBadMagicAndTruncation) {
  std::ofstream(path("junk.badj")) << "NOPEjunkjunk";
  EXPECT_THROW(read_binary_graph(path("junk.badj")), std::runtime_error);

  const graph g = cycle_graph(100);
  write_binary_graph(g, path("t.badj"));
  // Truncate the file mid-edges.
  std::filesystem::resize_file(path("t.badj"), 4 + 16 + 101 * 8 + 10);
  EXPECT_THROW(read_binary_graph(path("t.badj")), std::runtime_error);
}

TEST_F(IoTest, BinaryRejectsTextGraphFile) {
  const graph g = cycle_graph(10);
  write_adjacency_graph(g, path("text.adj"));
  EXPECT_THROW(read_binary_graph(path("text.adj")), std::runtime_error);
}

TEST_F(IoTest, MissingFileThrows) {
  EXPECT_THROW(read_adjacency_graph(path("nope.adj")), std::runtime_error);
  EXPECT_THROW(read_snap_edge_list(path("nope.txt")), std::runtime_error);
  EXPECT_THROW(read_binary_graph(path("nope.badj")), std::runtime_error);
}

TEST_F(IoTest, SnapEdgeListRoundTripAsPartition) {
  const graph g = random_graph(300, 3, 5);
  write_edge_list(g, path("g.txt"));
  const graph h = read_snap_edge_list(path("g.txt"));
  // Vertex ids may be compacted/reordered, but component structure and
  // edge count survive.
  EXPECT_EQ(h.num_undirected_edges(), g.num_undirected_edges());
  EXPECT_EQ(component_sizes(reference_components(h)),
            component_sizes(reference_components(g)));
}

TEST_F(IoTest, SnapReaderHandlesCommentsAndWhitespace) {
  std::ofstream out(path("s.txt"));
  out << "# comment line\n"
      << "10\t20\n"
      << "\n"
      << "20 30\n"
      << "# trailing comment\n"
      << "10 30\n";
  out.close();
  const graph g = read_snap_edge_list(path("s.txt"));
  EXPECT_EQ(g.num_vertices(), 3u);  // ids compacted
  EXPECT_EQ(g.num_undirected_edges(), 3u);
  EXPECT_TRUE(is_symmetric(g));
}

TEST_F(IoTest, SnapReaderRejectsGarbage) {
  std::ofstream(path("bad.txt")) << "1 two\n";
  EXPECT_THROW(read_snap_edge_list(path("bad.txt")), std::runtime_error);
  io_options serial;
  serial.parallel = false;
  EXPECT_THROW(read_snap_edge_list(path("bad.txt"), serial),
               std::runtime_error);
}

// ---------------------------------------------------------------------------
// PR 3: parallel ingest, binary v2, load_graph and loader failure modes.
// ---------------------------------------------------------------------------

io_options serial_io() {
  io_options o;
  o.parallel = false;
  return o;
}

std::string slurp(const std::string& p) {
  std::ifstream in(p, std::ios::binary);
  return {std::istreambuf_iterator<char>(in), std::istreambuf_iterator<char>()};
}

void spit(const std::string& p, const std::string& bytes) {
  std::ofstream out(p, std::ios::binary);
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
}

// The acceptance-critical invariant: the parallel readers produce a CSR
// byte-identical to the reference serial readers, across generators,
// formats and the mmap/read fallback.
TEST_F(IoTest, SerialParallelEquivalenceRandomized) {
  for (const uint64_t seed : {1, 2, 3}) {
    const graph graphs[] = {
        random_graph(200 + 57 * seed, 1 + seed % 4, seed),
        rmat_graph(256 << seed, 900 * seed, seed),
        cliques_with_bridges(3 + seed, 5),
    };
    for (const graph& g : graphs) {
      save_graph(g, path("e.adj"));
      save_graph(g, path("e.badj"));
      write_edge_list(g, path("e.txt"));
      for (const char* name : {"e.adj", "e.badj", "e.txt"}) {
        const graph s = load_graph(path(name), file_format::kAuto, serial_io());
        const graph p = load_graph(path(name));
        EXPECT_EQ(s.offsets(), p.offsets()) << name << " seed " << seed;
        EXPECT_EQ(s.edges(), p.edges()) << name << " seed " << seed;
        io_options no_mmap;
        no_mmap.use_mmap = false;
        const graph q = load_graph(path(name), file_format::kAuto, no_mmap);
        EXPECT_EQ(p.offsets(), q.offsets()) << name << " (read fallback)";
        EXPECT_EQ(p.edges(), q.edges()) << name << " (read fallback)";
      }
    }
  }
}

TEST_F(IoTest, SnapCompactionOrderMatchesSerial) {
  // Sparse 64-bit raw ids: the parallel hash-map compaction must assign
  // dense ids in first-appearance order, exactly like the serial
  // unordered_map loop.
  std::ofstream out(path("sparse.txt"));
  out << "# big sparse ids\n"
      << "1000000007 42\n"
      << "42 7\n"
      << "18446744073709551615 1000000007\n"
      << "7 3\n";
  out.close();
  const graph s = read_snap_edge_list(path("sparse.txt"), serial_io());
  const graph p = read_snap_edge_list(path("sparse.txt"));
  EXPECT_EQ(s.offsets(), p.offsets());
  EXPECT_EQ(s.edges(), p.edges());
  EXPECT_EQ(p.num_vertices(), 5u);
}

TEST_F(IoTest, LoadGraphSniffsContentNotExtension) {
  const graph g = cycle_graph(64);
  // Deliberately misleading extensions: sniffing reads the leading bytes.
  write_adjacency_graph(g, path("a.bin"));
  write_binary_graph(g, path("b.txt"));
  write_edge_list(g, path("c.adj"));
  for (const char* name : {"a.bin", "b.txt"}) {
    const graph h = load_graph(path(name));
    EXPECT_EQ(h.offsets(), g.offsets()) << name;
    EXPECT_EQ(h.edges(), g.edges()) << name;
  }
  const graph h = load_graph(path("c.adj"));  // sniffed as SNAP
  EXPECT_EQ(h.num_undirected_edges(), g.num_undirected_edges());
}

TEST_F(IoTest, FormatFromName) {
  EXPECT_EQ(format_from_name("auto"), file_format::kAuto);
  EXPECT_EQ(format_from_name("adj"), file_format::kAdjacency);
  EXPECT_EQ(format_from_name("badj"), file_format::kBinary);
  EXPECT_EQ(format_from_name("snap"), file_format::kSnap);
  EXPECT_THROW(format_from_name("bogus"), std::runtime_error);
}

TEST_F(IoTest, AdjacencyRejectsFirstOffsetNonzero) {
  // offsets[0] = 1 silently orphans edges[0] — now rejected (both paths).
  std::ofstream(path("off0.adj")) << "AdjacencyGraph\n2\n2\n1\n1\n0\n0\n";
  EXPECT_THROW(read_adjacency_graph(path("off0.adj")), std::runtime_error);
  EXPECT_THROW(read_adjacency_graph(path("off0.adj"), serial_io()),
               std::runtime_error);
}

TEST_F(IoTest, BinaryRejectsFirstOffsetNonzero) {
  // Hand-built v1 file: n=1, m=0, offsets {1, 0}.
  std::string bytes = "PCCG";
  const uint64_t words[4] = {1, 0, 1, 0};  // n, m, offsets[0], offsets[1]
  bytes.append(reinterpret_cast<const char*>(words), sizeof(words));
  spit(path("off0.badj"), bytes);
  EXPECT_THROW(read_binary_graph(path("off0.badj")), std::runtime_error);
}

TEST_F(IoTest, EmptyAndDegenerateFiles) {
  spit(path("empty.adj"), "");
  EXPECT_THROW(read_adjacency_graph(path("empty.adj")), std::runtime_error);
  EXPECT_THROW(read_adjacency_graph(path("empty.adj"), serial_io()),
               std::runtime_error);
  EXPECT_THROW(read_binary_graph(path("empty.adj")), std::runtime_error);
  // An empty SNAP file is a valid empty graph under both paths.
  spit(path("empty.txt"), "");
  EXPECT_EQ(read_snap_edge_list(path("empty.txt")).num_vertices(), 0u);
  EXPECT_EQ(read_snap_edge_list(path("empty.txt"), serial_io()).num_vertices(),
            0u);
  // n == 0 AdjacencyGraph.
  spit(path("zero.adj"), "AdjacencyGraph\n0\n0\n");
  EXPECT_EQ(read_adjacency_graph(path("zero.adj")).num_vertices(), 0u);
  EXPECT_EQ(read_adjacency_graph(path("zero.adj"), serial_io()).num_vertices(),
            0u);
}

TEST_F(IoTest, GiantHeaderRejectedBeforeAllocation) {
  // A header declaring 1e15 vertices in a tiny file must fail on the
  // structural size check, not attempt a petabyte allocation.
  spit(path("giant.adj"), "AdjacencyGraph\n1000000000000000\n3\n0\n1\n2\n");
  EXPECT_THROW(read_adjacency_graph(path("giant.adj")), std::runtime_error);

  std::string bytes = "PCC2";
  const uint32_t flags = 0;
  bytes.append(reinterpret_cast<const char*>(&flags), 4);
  const uint64_t nm[2] = {uint64_t{1} << 40, uint64_t{1} << 50};
  bytes.append(reinterpret_cast<const char*>(nm), sizeof(nm));
  bytes.append(64, '\0');
  spit(path("giant.badj"), bytes);
  EXPECT_THROW(read_binary_graph(path("giant.badj")), std::runtime_error);
}

TEST_F(IoTest, BinaryV2ChecksumDetectsCorruption) {
  const graph g = cycle_graph(100);
  write_binary_graph(g, path("c.badj"));
  std::string bytes = slurp(path("c.badj"));
  // Flip one edge target (header 24 bytes + 101 u64 offsets) to another
  // in-range vertex: structurally still a valid file, so only the
  // checksum can catch it.
  const size_t edge0 = 24 + 101 * 8;
  ASSERT_LT(edge0, bytes.size());
  bytes[edge0] = static_cast<char>(bytes[edge0] ^ 0x02);
  spit(path("c.badj"), bytes);
  EXPECT_THROW(read_binary_graph(path("c.badj")), std::runtime_error);
  // With verification disabled the (structurally valid) file loads, and
  // differs from the original — demonstrating the checksum is what caught
  // the corruption.
  io_options no_verify;
  no_verify.verify_checksum = false;
  const graph h = read_binary_graph(path("c.badj"), no_verify);
  EXPECT_NE(h.edges(), g.edges());
}

TEST_F(IoTest, BinaryV2RejectsTrailingGarbage) {
  write_binary_graph(cycle_graph(32), path("t2.badj"));
  std::string bytes = slurp(path("t2.badj"));
  bytes += "extra";
  spit(path("t2.badj"), bytes);
  EXPECT_THROW(read_binary_graph(path("t2.badj")), std::runtime_error);
}

TEST_F(IoTest, BinaryV1StillReadableAndLenient) {
  const graph g = rmat_graph(512, 2000, 9);
  io_options v1;
  v1.binary_version = 1;
  write_binary_graph(g, path("v1.badj"), v1);
  const graph h = read_binary_graph(path("v1.badj"));
  EXPECT_EQ(h.offsets(), g.offsets());
  EXPECT_EQ(h.edges(), g.edges());
  // v1 predates the structural size check; trailing bytes stay tolerated.
  std::string bytes = slurp(path("v1.badj"));
  bytes += "tail";
  spit(path("v1.badj"), bytes);
  EXPECT_EQ(read_binary_graph(path("v1.badj")).edges(), g.edges());
}

TEST_F(IoTest, BinaryV2WithoutChecksumRoundTrips) {
  const graph g = random_graph(300, 4, 11);
  io_options no_sum;
  no_sum.binary_checksum = false;
  write_binary_graph(g, path("ns.badj"), no_sum);
  // The file is smaller by exactly the 8-byte trailer.
  write_binary_graph(g, path("ws.badj"));
  EXPECT_EQ(std::filesystem::file_size(path("ns.badj")) + 8,
            std::filesystem::file_size(path("ws.badj")));
  const graph h = read_binary_graph(path("ns.badj"));
  EXPECT_EQ(h.offsets(), g.offsets());
  EXPECT_EQ(h.edges(), g.edges());
}

TEST_F(IoTest, BinaryTruncationDiagnostics) {
  write_binary_graph(cycle_graph(200), path("cut.badj"));
  const size_t full = std::filesystem::file_size(path("cut.badj"));
  for (const size_t keep : {size_t{2}, size_t{10}, size_t{100}, full - 1}) {
    std::filesystem::resize_file(path("cut.badj"), keep);
    try {
      read_binary_graph(path("cut.badj"));
      FAIL() << "accepted a file truncated to " << keep << " bytes";
    } catch (const std::runtime_error& e) {
      EXPECT_NE(std::string(e.what()).find("cut.badj"), std::string::npos);
    }
    write_binary_graph(cycle_graph(200), path("cut.badj"));
  }
}

TEST_F(IoTest, AdjacencyWhitespaceVariationsMatchSerial) {
  // Same token stream, CRLF + tabs + runs of spaces: both parsers see the
  // istream whitespace set.
  spit(path("ws.adj"), "AdjacencyGraph\r\n3  4\t\n0 2\r\n3\t1 2 0 0\n");
  const graph s = read_adjacency_graph(path("ws.adj"), serial_io());
  const graph p = read_adjacency_graph(path("ws.adj"));
  EXPECT_EQ(s.offsets(), p.offsets());
  EXPECT_EQ(s.edges(), p.edges());
  EXPECT_EQ(p.num_vertices(), 3u);
}

TEST_F(IoTest, AdjacencyRejectsMalformedNumber) {
  spit(path("junk.adj"), "AdjacencyGraph\n2\n2\n0\n1\n0\nx1\n");
  EXPECT_THROW(read_adjacency_graph(path("junk.adj")), std::runtime_error);
  EXPECT_THROW(read_adjacency_graph(path("junk.adj"), serial_io()),
               std::runtime_error);
}

TEST_F(IoTest, PhaseTimerSeesIoPhases) {
  const graph g = random_graph(500, 3, 13);
  write_binary_graph(g, path("ph.badj"));
  parallel::phase_timer phases;
  io_options opt;
  opt.phases = &phases;
  (void)read_binary_graph(path("ph.badj"), opt);
  EXPECT_TRUE(phases.phases().contains("io.map"));
  EXPECT_TRUE(phases.phases().contains("io.parse"));
  EXPECT_TRUE(phases.phases().contains("io.checksum"));
  EXPECT_TRUE(phases.phases().contains("io.validate"));
}

}  // namespace
}  // namespace pcc::graph
