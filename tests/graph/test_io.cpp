// Graph I/O: round trips, format details, error handling.

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>

#include "graph/generators.hpp"
#include "graph/io.hpp"
#include "graph/stats.hpp"

namespace pcc::graph {
namespace {

class IoTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = std::filesystem::temp_directory_path() /
           ("pcc_io_test_" + std::to_string(::getpid()));
    std::filesystem::create_directories(dir_);
  }
  void TearDown() override { std::filesystem::remove_all(dir_); }

  std::string path(const std::string& name) const { return (dir_ / name).string(); }

  std::filesystem::path dir_;
};

TEST_F(IoTest, AdjacencyGraphRoundTrip) {
  const graph g = rmat_graph(512, 2000, 3);
  write_adjacency_graph(g, path("g.adj"));
  const graph h = read_adjacency_graph(path("g.adj"));
  EXPECT_EQ(h.offsets(), g.offsets());
  EXPECT_EQ(h.edges(), g.edges());
}

TEST_F(IoTest, AdjacencyGraphEmpty) {
  const graph g = empty_graph(7);
  write_adjacency_graph(g, path("e.adj"));
  const graph h = read_adjacency_graph(path("e.adj"));
  EXPECT_EQ(h.num_vertices(), 7u);
  EXPECT_EQ(h.num_edges(), 0u);
}

TEST_F(IoTest, AdjacencyGraphKnownBytes) {
  std::ofstream out(path("k.adj"));
  out << "AdjacencyGraph\n3\n4\n0\n2\n3\n1\n2\n0\n0\n";
  out.close();
  const graph g = read_adjacency_graph(path("k.adj"));
  EXPECT_EQ(g.num_vertices(), 3u);
  EXPECT_EQ(g.degree(0), 2u);
  EXPECT_EQ(g.neighbors(0)[1], 2u);
  EXPECT_EQ(g.neighbors(2)[0], 0u);
}

TEST_F(IoTest, AdjacencyGraphRejectsBadHeader) {
  std::ofstream(path("bad.adj")) << "WeightedAdjacencyGraph\n1\n0\n0\n";
  EXPECT_THROW(read_adjacency_graph(path("bad.adj")), std::runtime_error);
}

TEST_F(IoTest, AdjacencyGraphRejectsTruncation) {
  std::ofstream(path("trunc.adj")) << "AdjacencyGraph\n3\n4\n0\n2\n";
  EXPECT_THROW(read_adjacency_graph(path("trunc.adj")), std::runtime_error);
}

TEST_F(IoTest, AdjacencyGraphRejectsOutOfRangeTarget) {
  std::ofstream(path("oor.adj")) << "AdjacencyGraph\n2\n1\n0\n1\n5\n";
  EXPECT_THROW(read_adjacency_graph(path("oor.adj")), std::runtime_error);
}

TEST_F(IoTest, AdjacencyGraphRejectsNonMonotoneOffsets) {
  std::ofstream(path("mono.adj")) << "AdjacencyGraph\n3\n2\n0\n2\n1\n0\n0\n";
  EXPECT_THROW(read_adjacency_graph(path("mono.adj")), std::runtime_error);
}

TEST_F(IoTest, BinaryRoundTripExact) {
  const graph g = rmat_graph(2048, 9000, 7);
  write_binary_graph(g, path("g.badj"));
  const graph h = read_binary_graph(path("g.badj"));
  EXPECT_EQ(h.offsets(), g.offsets());
  EXPECT_EQ(h.edges(), g.edges());
}

TEST_F(IoTest, BinaryEmptyGraph) {
  write_binary_graph(empty_graph(5), path("e.badj"));
  const graph h = read_binary_graph(path("e.badj"));
  EXPECT_EQ(h.num_vertices(), 5u);
  EXPECT_EQ(h.num_edges(), 0u);
}

TEST_F(IoTest, BinaryRejectsBadMagicAndTruncation) {
  std::ofstream(path("junk.badj")) << "NOPEjunkjunk";
  EXPECT_THROW(read_binary_graph(path("junk.badj")), std::runtime_error);

  const graph g = cycle_graph(100);
  write_binary_graph(g, path("t.badj"));
  // Truncate the file mid-edges.
  std::filesystem::resize_file(path("t.badj"), 4 + 16 + 101 * 8 + 10);
  EXPECT_THROW(read_binary_graph(path("t.badj")), std::runtime_error);
}

TEST_F(IoTest, BinaryRejectsTextGraphFile) {
  const graph g = cycle_graph(10);
  write_adjacency_graph(g, path("text.adj"));
  EXPECT_THROW(read_binary_graph(path("text.adj")), std::runtime_error);
}

TEST_F(IoTest, MissingFileThrows) {
  EXPECT_THROW(read_adjacency_graph(path("nope.adj")), std::runtime_error);
  EXPECT_THROW(read_snap_edge_list(path("nope.txt")), std::runtime_error);
  EXPECT_THROW(read_binary_graph(path("nope.badj")), std::runtime_error);
}

TEST_F(IoTest, SnapEdgeListRoundTripAsPartition) {
  const graph g = random_graph(300, 3, 5);
  write_edge_list(g, path("g.txt"));
  const graph h = read_snap_edge_list(path("g.txt"));
  // Vertex ids may be compacted/reordered, but component structure and
  // edge count survive.
  EXPECT_EQ(h.num_undirected_edges(), g.num_undirected_edges());
  EXPECT_EQ(component_sizes(reference_components(h)),
            component_sizes(reference_components(g)));
}

TEST_F(IoTest, SnapReaderHandlesCommentsAndWhitespace) {
  std::ofstream out(path("s.txt"));
  out << "# comment line\n"
      << "10\t20\n"
      << "\n"
      << "20 30\n"
      << "# trailing comment\n"
      << "10 30\n";
  out.close();
  const graph g = read_snap_edge_list(path("s.txt"));
  EXPECT_EQ(g.num_vertices(), 3u);  // ids compacted
  EXPECT_EQ(g.num_undirected_edges(), 3u);
  EXPECT_TRUE(is_symmetric(g));
}

TEST_F(IoTest, SnapReaderRejectsGarbage) {
  std::ofstream(path("bad.txt")) << "1 two\n";
  EXPECT_THROW(read_snap_edge_list(path("bad.txt")), std::runtime_error);
}

}  // namespace
}  // namespace pcc::graph
