// CSR graph invariants and accessors.

#include <gtest/gtest.h>

#include "graph/builder.hpp"
#include "graph/graph.hpp"

namespace pcc::graph {
namespace {

TEST(Graph, DefaultIsEmpty) {
  graph g;
  EXPECT_EQ(g.num_vertices(), 0u);
  EXPECT_EQ(g.num_edges(), 0u);
  EXPECT_TRUE(g.empty());
}

TEST(Graph, OffsetsAndDegrees) {
  // 0 -> {1, 2}, 1 -> {0}, 2 -> {0}, 3 -> {}
  graph g({0, 2, 3, 4, 4}, {1, 2, 0, 0});
  EXPECT_EQ(g.num_vertices(), 4u);
  EXPECT_EQ(g.num_edges(), 4u);
  EXPECT_EQ(g.num_undirected_edges(), 2u);
  EXPECT_EQ(g.degree(0), 2u);
  EXPECT_EQ(g.degree(1), 1u);
  EXPECT_EQ(g.degree(3), 0u);
  EXPECT_EQ(g.offset(0), 0u);
  EXPECT_EQ(g.offset(2), 3u);
}

TEST(Graph, NeighborsSpan) {
  graph g({0, 2, 3, 4, 4}, {1, 2, 0, 0});
  const auto n0 = g.neighbors(0);
  ASSERT_EQ(n0.size(), 2u);
  EXPECT_EQ(n0[0], 1u);
  EXPECT_EQ(n0[1], 2u);
  EXPECT_TRUE(g.neighbors(3).empty());
}

TEST(Graph, MoveSemantics) {
  graph g({0, 1, 1}, {1});
  graph h = std::move(g);
  EXPECT_EQ(h.num_vertices(), 2u);
  EXPECT_EQ(h.num_edges(), 1u);
}

TEST(Graph, EdgeListAlias) {
  edge_list el = {{0, 1}, {1, 2}};
  EXPECT_EQ(el.size(), 2u);
  EXPECT_EQ(el[1].second, 2u);
}

}  // namespace
}  // namespace pcc::graph
