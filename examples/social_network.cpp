// Component analysis of a social-network-like graph (the paper's
// com-Orkut experiment, on the synthetic stand-in — see DESIGN.md).
//
// Demonstrates: the SNAP edge-list reader (drop in the real com-Orkut file
// as argv[1] if you have it), component-size distributions, and a
// head-to-head of the decomposition CC against the BFS-based baselines on
// the kind of input where direction-optimizing BFS shines.

#include <algorithm>
#include <cstdio>

#include "pcc.hpp"

int main(int argc, char** argv) {
  using namespace pcc;

  graph::graph g;
  if (argc > 1) {
    std::printf("loading SNAP edge list %s ...\n", argv[1]);
    g = graph::read_snap_edge_list(argv[1]);
  } else {
    std::printf("no input file given; generating a com-Orkut-like graph "
                "(pass a SNAP edge list path to use real data)\n");
    g = graph::social_network_like(30000, 7);
  }
  std::printf("graph: n=%zu, m=%zu undirected edges, avg degree %.1f\n",
              g.num_vertices(), g.num_undirected_edges(),
              g.num_vertices() ? 2.0 * g.num_undirected_edges() /
                                     g.num_vertices()
                               : 0.0);

  // Label with the fastest decomposition variant.
  cc::cc_options opt;
  opt.algorithm = "decomp";
  opt.variant = cc::decomp_variant::kArbHybrid;
  parallel::timer t;
  const auto labels = cc::connected_components(g, opt);
  const double t_ours = t.elapsed();

  // Build the O(1)-query component index over the labeling.
  const cc::component_index idx(labels);
  std::printf("\ncomponents: %zu\n", idx.num_components());
  auto sizes = idx.sizes();
  std::sort(sizes.begin(), sizes.end(), std::greater<>());
  std::printf("largest components:");
  for (size_t i = 0; i < std::min<size_t>(5, sizes.size()); ++i) {
    std::printf(" %zu", sizes[i]);
  }
  std::printf("\n");
  if (!sizes.empty()) {
    std::printf("giant component covers %.1f%% of the network\n",
                100.0 * static_cast<double>(idx.size(idx.largest())) /
                    static_cast<double>(g.num_vertices()));
  }
  // Constant-time connectivity queries via the index.
  const vertex_id a = 0;
  const vertex_id b = static_cast<vertex_id>(g.num_vertices() / 2);
  std::printf("vertices %u and %u are %s\n", a, b,
              idx.connected(a, b) ? "connected" : "in different components");

  // Compare against the baselines that the paper reports winning on this
  // class of input (dense, low diameter, one giant component).
  t.start();
  const auto bfs_labels = baselines::hybrid_bfs_components(g);
  const double t_bfs = t.elapsed();
  t.start();
  const auto ms_labels = baselines::multistep_components(g);
  const double t_ms = t.elapsed();
  t.start();
  const auto sf_labels = baselines::serial_sf_components(g);
  const double t_sf = t.elapsed();

  std::printf("\ntimes (seconds, %d thread(s)):\n", parallel::num_workers());
  std::printf("  decomp-arb-hybrid-CC : %8.4f\n", t_ours);
  std::printf("  hybrid-BFS-CC        : %8.4f  (paper: wins on this input)\n",
              t_bfs);
  std::printf("  multistep-CC         : %8.4f\n", t_ms);
  std::printf("  serial-SF            : %8.4f\n", t_sf);

  const bool ok = baselines::labels_equivalent(labels, sf_labels) &&
                  baselines::labels_equivalent(bfs_labels, sf_labels) &&
                  baselines::labels_equivalent(ms_labels, sf_labels);
  std::printf("\nall four labelings agree: %s\n", ok ? "yes" : "NO (bug!)");
  return ok ? 0 : 1;
}
