// Quickstart: build a graph, run the decomposition-based parallel
// connectivity algorithm, inspect the result.
//
//   $ ./quickstart
//
// covers: graph construction from an edge list and from a generator,
// running connected_components with default and custom options, and
// reading the per-level statistics.

#include <cstdio>

#include "pcc.hpp"

int main() {
  using namespace pcc;

  // --- 1. A small graph from an explicit edge list. ---------------------
  // Two triangles joined by nothing, plus an isolated vertex: three
  // components. Edges are given once; the builder symmetrizes.
  const graph::graph small = graph::from_edges(
      7, {{0, 1}, {1, 2}, {2, 0}, {3, 4}, {4, 5}, {5, 3}});

  std::vector<vertex_id> labels = cc::connected_components(small);
  std::printf("small graph: %zu vertices, %zu undirected edges, %zu components\n",
              small.num_vertices(), small.num_undirected_edges(),
              cc::num_components(labels));
  for (size_t v = 0; v < small.num_vertices(); ++v) {
    std::printf("  vertex %zu -> component %u\n", v, labels[v]);
  }

  // --- 2. A million-edge random graph with custom options. --------------
  const graph::graph big = graph::random_graph(200000, 5, /*seed=*/1);

  cc::cc_options opt;
  opt.algorithm = "decomp";
  opt.variant = cc::decomp_variant::kArbHybrid;  // fastest variant
  opt.beta = 0.2;                                // the paper's sweet spot
  opt.seed = 42;

  parallel::timer t;
  cc::cc_stats stats;
  labels = cc::connected_components(big, opt, &stats);
  const double elapsed = t.elapsed();

  std::printf("\nrandom graph: n=%zu, m=%zu  ->  %zu component(s) in %.3fs "
              "on %d thread(s)\n",
              big.num_vertices(), big.num_undirected_edges(),
              cc::num_components(labels), elapsed, parallel::num_workers());

  std::printf("recursion levels: %zu\n", stats.levels.size());
  for (size_t i = 0; i < stats.levels.size(); ++i) {
    const auto& ls = stats.levels[i];
    std::printf("  level %zu: n=%-8zu m=%-9zu -> kept %zu inter-cluster "
                "edges (%zu clusters, %zu BFS rounds)\n",
                i, ls.n, ls.m, ls.edges_after_dedup, ls.num_clusters,
                ls.bfs_rounds);
  }

  // --- 3. Verify against the sequential baseline. ------------------------
  const bool ok = baselines::labels_equivalent(
      labels, baselines::serial_sf_components(big));
  std::printf("\nmatches serial union-find spanning forest: %s\n",
              ok ? "yes" : "NO (bug!)");
  return ok ? 0 : 1;
}
