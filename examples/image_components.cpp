// Connected-component labeling of a binary image — one of the motivating
// applications named in the paper's introduction (image analysis for
// computer vision).
//
// A synthetic binary image is generated (random blobs on a background),
// turned into a pixel-adjacency graph (4-connectivity between foreground
// pixels), labeled with the decomposition-based parallel connectivity
// algorithm, and summarized as a blob-size histogram. A miniature ASCII
// rendering of a corner of the labeled image is printed.

#include <cstdio>
#include <map>
#include <vector>

#include "pcc.hpp"

namespace {

using namespace pcc;

struct binary_image {
  size_t rows, cols;
  std::vector<uint8_t> pixels;  // 1 = foreground

  uint8_t at(size_t r, size_t c) const { return pixels[r * cols + c]; }
};

// Random blobs: scatter seed points, grow each into a diamond of random
// radius.
binary_image make_image(size_t rows, size_t cols, size_t num_blobs,
                        uint64_t seed) {
  binary_image img{rows, cols, std::vector<uint8_t>(rows * cols, 0)};
  parallel::rng gen(seed);
  for (size_t b = 0; b < num_blobs; ++b) {
    const size_t cr = gen.bounded(3 * b, rows);
    const size_t cc = gen.bounded(3 * b + 1, cols);
    const size_t radius = 1 + gen.bounded(3 * b + 2, 6);
    for (size_t r = cr >= radius ? cr - radius : 0;
         r < std::min(rows, cr + radius + 1); ++r) {
      for (size_t c = cc >= radius ? cc - radius : 0;
           c < std::min(cols, cc + radius + 1); ++c) {
        const size_t dist = (r > cr ? r - cr : cr - r) +
                            (c > cc ? c - cc : cc - c);
        if (dist <= radius) img.pixels[r * cols + c] = 1;
      }
    }
  }
  return img;
}

// 4-connectivity pixel graph over foreground pixels. Background pixels
// stay isolated vertices (their labels are ignored).
graph::graph image_to_graph(const binary_image& img) {
  graph::edge_list edges;
  for (size_t r = 0; r < img.rows; ++r) {
    for (size_t c = 0; c < img.cols; ++c) {
      if (!img.at(r, c)) continue;
      const vertex_id v = static_cast<vertex_id>(r * img.cols + c);
      if (r + 1 < img.rows && img.at(r + 1, c)) {
        edges.push_back({v, static_cast<vertex_id>((r + 1) * img.cols + c)});
      }
      if (c + 1 < img.cols && img.at(r, c + 1)) {
        edges.push_back({v, static_cast<vertex_id>(r * img.cols + c + 1)});
      }
    }
  }
  return graph::from_edges(img.rows * img.cols, std::move(edges));
}

}  // namespace

int main() {
  const size_t rows = 512;
  const size_t cols = 512;
  const binary_image img = make_image(rows, cols, 600, 7);
  const graph::graph g = image_to_graph(img);

  size_t foreground = 0;
  for (uint8_t p : img.pixels) foreground += p;
  std::printf("image: %zux%zu, %zu foreground pixels, adjacency graph "
              "m=%zu\n",
              rows, cols, foreground, g.num_undirected_edges());

  parallel::timer t;
  cc::cc_options opt;
  opt.algorithm = "decomp";
  opt.variant = cc::decomp_variant::kArbHybrid;
  const std::vector<vertex_id> labels = cc::connected_components(g, opt);
  std::printf("labeled in %.4fs\n", t.elapsed());

  // Blob statistics: group foreground pixels by component label.
  std::map<vertex_id, size_t> blob_sizes;
  for (size_t i = 0; i < img.pixels.size(); ++i) {
    if (img.pixels[i]) ++blob_sizes[labels[i]];
  }
  std::map<size_t, size_t> histogram;  // size bucket -> count
  size_t largest = 0;
  for (const auto& [label, size] : blob_sizes) {
    size_t bucket = 1;
    while (bucket < size) bucket *= 2;
    ++histogram[bucket];
    largest = std::max(largest, size);
  }
  std::printf("blobs: %zu (largest %zu px)\n", blob_sizes.size(), largest);
  std::printf("blob size histogram (size <= bucket):\n");
  for (const auto& [bucket, count] : histogram) {
    std::printf("  %6zu px: %zu blob(s)\n", bucket, count);
  }

  // Tiny ASCII rendering of the top-left corner, blobs keyed by letter.
  std::printf("\ntop-left 32x64 corner (letters = blob ids, '.' = "
              "background):\n");
  std::map<vertex_id, char> letter;
  for (size_t r = 0; r < 32; ++r) {
    for (size_t c = 0; c < 64; ++c) {
      if (!img.at(r, c)) {
        std::putchar('.');
        continue;
      }
      const vertex_id l = labels[r * cols + c];
      if (!letter.contains(l)) {
        letter[l] = static_cast<char>('a' + (letter.size() % 26));
      }
      std::putchar(letter[l]);
    }
    std::putchar('\n');
  }

  // Cross-check against the sequential oracle.
  const bool ok = pcc::baselines::labels_equivalent(
      labels, pcc::baselines::serial_sf_components(g));
  std::printf("\nverified against serial baseline: %s\n", ok ? "yes" : "NO");
  return ok ? 0 : 1;
}
