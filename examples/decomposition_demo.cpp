// Low-diameter decomposition as a standalone tool.
//
// The paper's decomposition subroutine is useful beyond connectivity
// (graph partitioning for solvers, metric embeddings). This example
// decomposes a 3-D grid at several beta values and reports the measured
// cluster count, maximum cluster diameter and inter-cluster edge fraction
// against the theoretical guarantees (diameter O(log n / beta), expected
// inter-cluster fraction <= 2*beta for Decomp-Arb, Theorem 2).

#include <cmath>
#include <cstdio>

#include "pcc.hpp"

int main() {
  using namespace pcc;

  const graph::graph g = graph::grid3d_graph(32768, /*randomize_labels=*/true,
                                             /*seed=*/11);
  std::printf("input: 3-D torus grid, n=%zu, m=%zu undirected edges\n\n",
              g.num_vertices(), g.num_undirected_edges());

  std::printf("%-6s | %-9s | %10s | %12s | %14s | %12s\n", "beta", "variant",
              "clusters", "max diam", "inter-cluster", "2*beta bound");
  std::printf("---------------------------------------------------------------"
              "---------------\n");

  for (double beta : {0.05, 0.1, 0.2, 0.4}) {
    for (int variant = 0; variant < 2; ++variant) {
      ldd::options opt;
      opt.beta = beta;
      opt.seed = 3;
      const ldd::result dec = variant == 0 ? ldd::decompose_arb(g, opt)
                                           : ldd::decompose_min(g, opt);
      const auto q = ldd::check_decomposition(g, dec.cluster);
      if (!q.well_formed) {
        std::fprintf(stderr, "BUG: malformed decomposition\n");
        return 1;
      }
      std::printf("%-6.2f | %-9s | %10zu | %12zu | %13.4f%% | %11.2f%%\n",
                  beta, variant == 0 ? "arb" : "min", q.num_clusters,
                  q.max_cluster_diameter, 100.0 * q.inter_cluster_fraction,
                  100.0 * 2 * beta);
    }
  }

  std::printf("\ndiameter guide: O(log n / beta); log(n) = %.1f\n",
              std::log(static_cast<double>(g.num_vertices())));
  std::printf("note: Decomp-Min's expected inter-cluster bound is beta*m "
              "(half the Arb bound); both are usually loose in practice.\n");
  return 0;
}
