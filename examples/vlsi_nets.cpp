// Electrical-net extraction for a synthetic VLSI layout — the other
// application named in the paper's introduction (connectivity in VLSI
// design): metal shapes on several routing layers, connected by overlap
// within a layer and by vias between layers, form electrical nets =
// connected components of the shape-contact graph.
//
// This example synthesizes a chip-like layout (horizontal wires on layer 1,
// vertical wires on layer 2, random vias), builds the contact graph, labels
// the nets with the decomposition CC, then answers the classic layout
// questions: how many nets, how big is the largest net, and are two given
// pins electrically connected?

#include <cstdio>
#include <vector>

#include "pcc.hpp"

namespace {

using namespace pcc;

struct wire {
  int layer;        // 1 = horizontal, 2 = vertical
  int track;        // row (layer 1) or column (layer 2)
  int lo, hi;       // span along the track
};

}  // namespace

int main() {
  const int kTracks = 300;   // rows == columns
  const int kSpan = 300;
  parallel::rng gen(2014);

  // Synthesize wires: several segments per track on each layer.
  std::vector<wire> wires;
  for (int layer = 1; layer <= 2; ++layer) {
    for (int track = 0; track < kTracks; ++track) {
      int cursor = 0;
      uint64_t ctr = static_cast<uint64_t>(layer) * 1000003 + track * 977;
      while (cursor < kSpan - 4) {
        const int len = 3 + static_cast<int>(gen.bounded(ctr++, 40));
        const int lo = cursor + static_cast<int>(gen.bounded(ctr++, 5));
        const int hi = std::min(kSpan - 1, lo + len);
        if (hi > lo) wires.push_back({layer, track, lo, hi});
        cursor = hi + 2;
      }
    }
  }
  const size_t n = wires.size();

  // Contact graph: a horizontal wire (layer 1, row r, [lo,hi]) touches a
  // vertical wire (layer 2, column c, [lo2,hi2]) through a via iff they
  // cross (c in [lo,hi] and r in [lo2,hi2]) and a via exists at (r, c).
  // Vias are dropped at random crossings. Build a crossing index by column.
  std::vector<std::vector<uint32_t>> by_column(kSpan);
  std::vector<uint32_t> horizontals;
  for (uint32_t i = 0; i < n; ++i) {
    if (wires[i].layer == 2) by_column[wires[i].track].push_back(i);
    else horizontals.push_back(i);
  }
  graph::edge_list contacts;
  uint64_t via_ctr = 0;
  for (uint32_t hi_idx : horizontals) {
    const wire& h = wires[hi_idx];
    for (int c = h.lo; c <= h.hi; ++c) {
      for (uint32_t v_idx : by_column[c]) {
        const wire& v = wires[v_idx];
        if (v.lo <= h.track && h.track <= v.hi &&
            gen.bounded(via_ctr++, 100) < 18) {  // 18% via probability
          contacts.push_back({hi_idx, v_idx});
        }
      }
    }
  }
  const graph::graph g = graph::from_edges(n, std::move(contacts));

  std::printf("layout: %zu wire segments, %zu contacts (vias)\n", n,
              g.num_undirected_edges());

  parallel::timer t;
  cc::cc_options opt;
  opt.algorithm = "decomp";
  opt.beta = 0.1;
  const auto nets = cc::connected_components(g, opt);
  std::printf("net extraction: %zu electrical nets in %.4fs\n",
              cc::num_components(nets), t.elapsed());

  const auto sizes = graph::component_sizes(nets);
  std::printf("largest nets (segments):");
  for (size_t i = 0; i < std::min<size_t>(5, sizes.size()); ++i) {
    std::printf(" %zu", sizes[i]);
  }
  std::printf("\nsingleton (unconnected) segments: %zu\n",
              static_cast<size_t>(std::count(sizes.begin(), sizes.end(), 1u)));

  // Connectivity queries: O(1) per query once the labeling exists.
  std::printf("\nsample connectivity queries:\n");
  for (uint64_t q = 0; q < 5; ++q) {
    const vertex_id a = static_cast<vertex_id>(gen.bounded(10 * q + 1, n));
    const vertex_id b = static_cast<vertex_id>(gen.bounded(10 * q + 2, n));
    std::printf("  segment %6u (L%d t%3d) ~ segment %6u (L%d t%3d): %s\n", a,
                wires[a].layer, wires[a].track, b, wires[b].layer,
                wires[b].track,
                nets[a] == nets[b] ? "same net" : "different nets");
  }

  // Extract the biggest net as its own graph (e.g. for downstream timing
  // analysis) via the subgraph utilities.
  std::vector<vertex_id> old_ids;
  const graph::graph biggest =
      graph::extract_component(g, nets, [&] {
        vertex_id best = nets[0];
        size_t best_size = 0;
        std::unordered_map<vertex_id, size_t> counts;
        for (vertex_id l : nets) ++counts[l];
        for (auto [l, c] : counts) {
          if (c > best_size) { best = l; best_size = c; }
        }
        return best;
      }(), &old_ids);
  std::printf("\nlargest net extracted as subgraph: %zu segments, %zu "
              "contacts\n", biggest.num_vertices(),
              biggest.num_undirected_edges());

  const bool ok = baselines::is_valid_components_labeling(g, nets);
  std::printf("verified against sequential oracle: %s\n", ok ? "yes" : "NO");
  return ok ? 0 : 1;
}
