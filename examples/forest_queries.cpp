// Forest queries: labels AND a spanning forest from one connectivity
// pass, then structure queries through forest_index.
//
//   $ ./forest_queries
//
// covers: sf_engine (workspace-backed labels + witness forest in a single
// decompose-contract run), forest_index construction, and the query
// surface — path() with original-edge answers, bridges(), per-component
// stats(), k_largest().

#include <cstdio>

#include "pcc.hpp"

int main() {
  using namespace pcc;

  // --- 1. A small graph with visible structure. -------------------------
  // A 6-cycle (no bridges), a path of three vertices hanging off vertex 2
  // (all bridges), and an isolated pair. Two components.
  const graph::graph small = graph::from_edges(
      11, {{0, 1}, {1, 2}, {2, 3}, {3, 4}, {4, 5}, {5, 0},  // cycle
           {2, 6}, {6, 7}, {7, 8},                          // tail
           {9, 10}});                                       // pair

  cc::sf_engine engine;
  const cc::sf_engine::result r = engine.run(small);
  const cc::forest_index idx(small.num_vertices(), r.forest, r.labels);
  std::printf("small graph: n=%zu, forest of %zu edges, %zu components\n",
              small.num_vertices(), r.forest.size(),
              idx.components().num_components());

  // Every edge path() returns is an edge of the input graph (the witness
  // property), so the route is directly walkable.
  const auto path = idx.path(8, 4);
  std::printf("path 8 -> 4 (%zu edges):", path.size());
  for (auto [u, v] : path) std::printf("  %u-%u", u, v);
  std::printf("\n");

  // The cycle's edges are covered; the tail's edges and the pair are not.
  const auto bridges = idx.bridges(small);
  std::printf("bridges (%zu):", bridges.size());
  for (auto [u, v] : bridges) std::printf("  %u-%u", u, v);
  std::printf("\n");

  for (vertex_id c = 0; c < idx.components().num_components(); ++c) {
    const auto st = idx.stats(c);
    std::printf("component %u: root=%u size=%zu tree diameter=%zu\n", c,
                st.root, st.size, st.diameter);
  }

  // --- 2. Scale: the same two outputs from one pass over a big graph. ---
  const graph::graph big = graph::random_graph(200000, 3, /*seed=*/7);

  parallel::timer t;
  const cc::sf_engine::result br = engine.run(big);
  const double run_s = t.elapsed();
  const cc::forest_index bidx(big.num_vertices(), br.forest, br.labels);
  const double total_s = t.elapsed();

  const auto top = bidx.k_largest(3);
  std::printf("\nrandom graph: n=%zu m=%zu -> %zu forest edges in %.3fs "
              "(+%.3fs index) on %d thread(s)\n",
              big.num_vertices(), big.num_undirected_edges(),
              br.forest.size(), run_s, total_s - run_s,
              parallel::num_workers());
  for (vertex_id c : top) {
    const auto st = bidx.stats(c);
    std::printf("  component %u: size=%zu tree diameter=%zu\n", c, st.size,
                st.diameter);
  }

  // --- 3. The forest really spans: n - #components edges, all real. -----
  const size_t expect =
      big.num_vertices() - bidx.components().num_components();
  const bool ok = br.forest.size() == expect;
  std::printf("forest size == n - #components: %s\n", ok ? "yes" : "NO (bug!)");
  return ok ? 0 : 1;
}
